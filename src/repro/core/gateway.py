"""Proxy-side query gateways.

The *query gateway* runs on the user's mobile device (paper Figure 1): it
issues the query with the current motion profile, re-injects prefetch
chains when a new profile arrives, launches cancel chases along abandoned
paths, and collects result messages.

Two gateways are provided: :class:`MobiQueryGateway` (the real service,
JIT or greedy prefetching per the protocol config) and
:class:`NoPrefetchGateway` (the NP baseline's per-period broadcast).  Both
record :class:`DeliveryRecord` events that the experiment runner converts
into per-period metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..geometry.shapes import Circle
from ..geometry.vec import Vec2
from ..mobility.profile import MotionProfile, ProfileProvider
from ..net.flooding import FloodManager
from ..net.network import Network
from ..net.node import MobileEndpoint, SensorNode
from ..net.packet import Frame
from ..sim.trace import Tracer
from .baseline import NoPrefetchProtocol
from .messages import (
    INJECT_SIZE_BYTES,
    NP_QUERY_SIZE_BYTES,
    InjectMessage,
    NpQueryMessage,
    NpReportMessage,
    ResultMessage,
)
from .query import AggregateState, QuerySpec
from .service import MobiQueryProtocol


@dataclass(frozen=True)
class DeliveryRecord:
    """One observed result state at the proxy.

    ``area_center`` is the centre of the area the service actually queried
    for this period (the pickup point for MobiQuery, the issue position for
    the NP baseline); the paper's data-fidelity denominator is the node set
    of that area.
    """

    k: int
    time: float
    value: Optional[float]
    contributors: FrozenSet[int]
    area_center: Optional[Vec2] = None
    #: the exact placed query area, when the service reported it
    area: Optional[object] = None
    #: True when the result was salvaged through fault recovery
    #: (collector re-election) rather than the normal collection path
    degraded: bool = False
    #: declared worst-case |answer - exact| (approximate sessions only)
    error_bound: Optional[float] = None


class BaseGateway:
    """Shared delivery bookkeeping for both gateways."""

    def __init__(
        self,
        proxy: MobileEndpoint,
        network: Network,
        spec: QuerySpec,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.proxy = proxy
        self.network = network
        self.spec = spec
        self.tracer = tracer if tracer is not None else network.tracer
        self.sim = network.sim
        self.deliveries: List[DeliveryRecord] = []
        self.last_delivered_k = 0
        #: set by :meth:`close`; a closed gateway ignores every scheduled
        #: callback and frame so a cancelled session goes silent immediately
        self.closed = False
        #: flipped on by the service when a non-empty fault plan is active;
        #: gates the watchdog's degraded-period accounting so fault-free
        #: runs never mark periods degraded
        self.faults_active = False
        #: periods the fault-recovery machinery had to intervene on (or
        #: knows it lost); surfaced as ``SessionResult.degraded_periods``
        self.degraded_ks: Set[int] = set()

    def close(self) -> None:
        """Stop the proxy side of the session (cancel/teardown support).

        Pending kernel events owned by the gateway still surface but no-op
        against the flag; no new traffic, profile adoptions, or delivery
        records are produced after this call.
        """
        self.closed = True
        self.tracer.emit(
            "session-closed",
            self.sim.now,
            user=self.spec.user_id,
            query=self.spec.query_id,
        )

    @property
    def user_id(self) -> int:
        """The owning user (from the query spec)."""
        return self.spec.user_id

    @property
    def session_key(self) -> "tuple[int, int]":
        """The ``(user_id, query_id)`` session this gateway serves."""
        return self.spec.session_key

    def record_delivery(
        self,
        k: int,
        value: Optional[float],
        contributors: FrozenSet[int],
        area_center: Optional[Vec2] = None,
        area: Optional[object] = None,
        degraded: bool = False,
        error_bound: Optional[float] = None,
    ) -> None:
        """Append a delivery observation at the current time."""
        record = DeliveryRecord(
            k=k,
            time=self.sim.now,
            value=value,
            contributors=contributors,
            area_center=area_center,
            area=area,
            degraded=degraded,
            error_bound=error_bound,
        )
        self.deliveries.append(record)
        if degraded:
            self.degraded_ks.add(k)
        self.last_delivered_k = max(self.last_delivered_k, k)
        self.tracer.emit(
            "delivery",
            self.sim.now,
            k=k,
            contributors=len(contributors),
        )

    def deliveries_for(self, k: int) -> List[DeliveryRecord]:
        """All delivery observations for period ``k`` in time order."""
        return sorted(
            (d for d in self.deliveries if d.k == k), key=lambda d: d.time
        )


class MobiQueryGateway(BaseGateway):
    """Gateway for the MobiQuery service (JIT or greedy prefetching)."""

    #: attempts at injecting through different nearby backbone nodes
    _INJECT_CANDIDATES = 3
    #: delay before re-trying an injection that failed at the MAC level
    _INJECT_RETRY_S = 0.2
    #: keep an existing query tree while the new profile moves its pickup
    #: point by less than this.  An intact tree whose area trails the user
    #: by a couple dozen metres still answers the query it was asked (and
    #: stays within proxy radio reach), whereas rebuilding an imminent tree
    #: forfeits the sleeping leaves outside the overlap — they cannot be
    #: re-woken before the deadline.  Genuine heading changes blow through
    #: this tolerance within a couple of periods and trigger the paper's
    #: greedy catch-up immediately.
    _REPLACE_TOLERANCE_M = 25.0

    def __init__(
        self,
        proxy: MobileEndpoint,
        network: Network,
        spec: QuerySpec,
        protocol: MobiQueryProtocol,
        provider: ProfileProvider,
        tracer: Optional[Tracer] = None,
    ) -> None:
        super().__init__(proxy, network, spec, tracer)
        self.protocol = protocol
        self.provider = provider
        self.current_profile: Optional[MotionProfile] = None
        self._last_reinject_at = -float("inf")
        proxy.register_handler("mq-result", self._on_result)

    def start(self) -> None:
        """Schedule all profile arrivals; the first one issues the query.

        A session starting mid-run (``start_s`` > 0) collapses every
        arrival that predates its origin into the single newest one: the
        proxy would have held exactly that profile at session start, and
        replaying the full pre-start history would inject a burst of
        mutually-superseding chains (and cancel chases) at ``start_s``.
        """
        arrivals = self.provider.arrivals()
        if not arrivals:
            raise ValueError("profile provider produced no profiles")
        origin = max(self.sim.now, self.spec.start_s)
        past = [a for a in arrivals if a.time < origin]
        if past:
            newest = max(past, key=lambda a: (a.time, a.profile.tg))
            self.sim.schedule_at(origin, self._on_profile, newest.profile)
        for arrival in arrivals:
            if arrival.time >= origin:
                self.sim.schedule_at(arrival.time, self._on_profile, arrival.profile)
        # First watchdog relative to the *effective* origin: for a session
        # registered after its nominal start the collapsed profile adopts
        # at `origin`, and a watchdog in the same instant would see only
        # silence and immediately re-inject a superseding chain.
        self.sim.schedule_at(origin + 1.3 * self.spec.period_s, self._watchdog)

    def _watchdog(self) -> None:
        """Recover a dead prefetch chain.

        If a prefetch or its tree vanished en route (geo drop, collision
        streak, cancel/prefetch race), no collector ever answers again and
        the query would silently die.  The user-visible symptom is missing
        results, so the gateway re-injects the current profile when two
        consecutive deadlines pass without any delivery.
        """
        if self.closed:
            return
        now = self.sim.now
        k_due = self.spec.period_index(now)
        if (
            self.current_profile is not None
            and k_due >= 2
            and self.last_delivered_k < k_due - 1
            and now - self._last_reinject_at > 2.0 * self.spec.period_s
        ):
            self._last_reinject_at = now
            k_next = k_due + 1
            if k_next <= self.spec.num_periods:
                if self.faults_active:
                    # Under an active fault plan the silent periods the
                    # watchdog is recovering from count as degraded (they
                    # are unrecoverable: their deadlines already passed).
                    for k in range(self.last_delivered_k + 1, k_due + 1):
                        self.degraded_ks.add(k)
                self.tracer.emit("watchdog-reinject", now, k_next=k_next)
                # Fresh generation: the re-injected chain must supersede
                # whatever half-dead state the silence came from.
                self.current_profile = self.current_profile.regenerated()
                self._inject(self.current_profile, k_next, None)
        if k_due + 1 <= self.spec.num_periods:
            self.sim.schedule_at(
                self.spec.deadline(k_due + 1) + 0.3 * self.spec.period_s,
                self._watchdog,
            )

    # ------------------------------------------------------------------
    # Profile handling
    # ------------------------------------------------------------------
    def _on_profile(self, profile: MotionProfile) -> None:
        if self.closed:
            return
        previous = self.current_profile
        if previous is not None and profile.tg < previous.tg:
            return  # stale: generated from older knowledge than the current
        # Stamp a fresh generation: adoption order defines the in-network
        # supersede order, even across watchdog re-injections.
        profile = profile.regenerated()
        self.current_profile = profile
        now = self.sim.now
        k_next = self.spec.period_index(now) + 1
        while k_next <= self.spec.num_periods and self.spec.deadline(k_next) <= now:
            k_next += 1
        if k_next > self.spec.num_periods:
            return
        k_start = self._injection_start_period(previous, profile, k_next)
        if k_start > self.spec.num_periods:
            return  # the old chain still predicts everything well enough
        self.tracer.emit(
            "profile-adopted",
            now,
            gen=profile.generation,
            advance=profile.advance_time,
            k_next=k_start,
        )
        self._inject(profile, k_start, previous)

    def _injection_start_period(
        self,
        previous: Optional[MotionProfile],
        profile: MotionProfile,
        k_next: int,
    ) -> int:
        """Where the replacement prefetch chain should start.

        Two rules:

        * never before the new profile takes effect — a profile delivered
          with positive advance time describes the *future* leg, and the
          old profile remains authoritative until ``ts``;
        * skip periods the old profile still predicts within tolerance —
          their trees are fine where they are.  The first genuinely
          diverged period starts the chain, which is the paper's greedy
          catch-up when a real motion change invalidated everything.
        """
        k = k_next
        while k <= self.spec.num_periods and self.spec.deadline(k) < profile.ts:
            k += 1
        if previous is None:
            return k
        while k <= self.spec.num_periods:
            deadline = self.spec.deadline(k)
            drift = previous.position_at(deadline).distance_to(
                profile.position_at(deadline)
            )
            if drift > self._REPLACE_TOLERANCE_M:
                return k
            k += 1
        return k  # nothing diverged: keep the old chain untouched

    def _inject(
        self,
        profile: MotionProfile,
        start_k: int,
        cancel_profile: Optional[MotionProfile],
        attempt: int = 0,
    ) -> None:
        if self.closed:
            return
        candidates = self._injection_candidates()
        if not candidates:
            self.sim.schedule(
                self._INJECT_RETRY_S, self._inject, profile, start_k, cancel_profile, attempt
            )
            return
        target = candidates[min(attempt, len(candidates) - 1)]
        message = InjectMessage(
            spec=self.spec,
            profile=profile,
            start_k=start_k,
            proxy_id=self.proxy.node_id,
        )
        frame = Frame(
            kind="mq-inject",
            src=self.proxy.node_id,
            dst=target.node_id,
            size_bytes=INJECT_SIZE_BYTES,
            payload=message,
        )

        def on_done(success: bool) -> None:
            if success:
                if cancel_profile is not None:
                    self.protocol.start_cancel_chain(
                        target, self.spec, cancel_profile, start_k
                    )
                return
            if attempt + 1 < self._INJECT_CANDIDATES:
                self._inject(profile, start_k, cancel_profile, attempt + 1)
            else:
                self.sim.schedule(
                    self._INJECT_RETRY_S,
                    self._inject,
                    profile,
                    start_k,
                    cancel_profile,
                    0,
                )

        self.proxy.send(frame, on_done)

    def _injection_candidates(self) -> List[SensorNode]:
        """Backbone nodes in radio range of the proxy, nearest first."""
        position = self.proxy.position
        in_range = self.network.active_nodes_in_disk(
            position, self.network.config.comm_range_m
        )
        in_range.sort(key=lambda n: n.position.distance_sq_to(position))
        return in_range

    # ------------------------------------------------------------------
    # Result reception
    # ------------------------------------------------------------------
    def _on_result(self, proxy: MobileEndpoint, frame: Frame) -> None:
        if self.closed:
            return
        msg: ResultMessage = frame.payload
        if (msg.user_id, msg.query_id) != self.spec.session_key:
            return
        self.record_delivery(
            msg.k,
            msg.aggregate.value(self.spec.aggregation),
            frozenset(msg.aggregate.contributors),
            area_center=msg.pickup,
            area=msg.area,
            degraded=msg.degraded,
        )


class NoPrefetchGateway(BaseGateway):
    """Gateway for the NP baseline: broadcast each period, gather reports."""

    def __init__(
        self,
        proxy: MobileEndpoint,
        network: Network,
        spec: QuerySpec,
        protocol: NoPrefetchProtocol,
        flood: FloodManager,
        tracer: Optional[Tracer] = None,
    ) -> None:
        super().__init__(proxy, network, spec, tracer)
        self.protocol = protocol
        self.flood = flood
        self._partials: Dict[int, AggregateState] = {}
        self._issue_positions: Dict[int, Vec2] = {}
        self._flood_ids: List[int] = []
        proxy.register_handler("np-report", self._on_report)

    def close(self) -> None:
        """Close the gateway and drop the per-flood dedup state it created."""
        super().close()
        for flood_id in self._flood_ids:
            self.flood.release(flood_id)
        self._flood_ids.clear()

    def start(self) -> None:
        """Schedule one query broadcast at the start of every period."""
        for k in range(1, self.spec.num_periods + 1):
            issue_at = self.spec.deadline(k) - self.spec.period_s + 1e-3
            self.sim.schedule_at(max(self.sim.now, issue_at), self._issue, k)

    def _issue(self, k: int) -> None:
        if self.closed:
            return
        position = self.proxy.position
        self._issue_positions[k] = position
        message = NpQueryMessage(
            query_id=self.spec.query_id,
            k=k,
            deadline=self.spec.deadline(k),
            freshness_s=self.spec.freshness_s,
            proxy_id=self.proxy.node_id,
            issue_position=position,
            radius_m=self.spec.radius_m,
            user_id=self.spec.user_id,
        )
        envelope = self.flood.start_flood(
            area=Circle(position, self.spec.radius_m),
            inner_kind="np-query",
            inner_payload=message,
            inner_size=NP_QUERY_SIZE_BYTES,
            active_only=True,
        )
        self._flood_ids.append(envelope.flood_id)
        self.tracer.emit("np-issue", self.sim.now, k=k)
        self.proxy.send(self.flood.make_frame(self.proxy.node_id, envelope))

    def _on_report(self, proxy: MobileEndpoint, frame: Frame) -> None:
        if self.closed:
            return
        msg: NpReportMessage = frame.payload
        if (msg.user_id, msg.query_id) != self.spec.session_key:
            return
        partial = self._partials.setdefault(msg.k, AggregateState())
        before = len(partial.contributors)
        partial.merge(AggregateState.from_reading(msg.node_id, msg.value))
        if len(partial.contributors) == before:
            return  # duplicate report
        self.record_delivery(
            msg.k,
            partial.value(self.spec.aggregation),
            frozenset(partial.contributors),
            area_center=self._issue_positions.get(msg.k),
        )


class SessionScheduler:
    """Registry and starter for concurrent query sessions.

    One scheduler per run owns all the gateways sharing a network: it
    enforces that every ``(user_id, query_id)`` session is unique, starts
    each gateway at its spec's ``start_s`` (sessions added mid-run start
    immediately if their origin has passed), and exposes the session table
    for workload-level bookkeeping.  Protocol instances stay shared — the
    scheduler only manages the per-user proxy side.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self._gateways: Dict[Tuple[int, int], BaseGateway] = {}
        self._started: Set[Tuple[int, int]] = set()
        self._start_events: Dict[Tuple[int, int], object] = {}

    def add(self, gateway: BaseGateway) -> None:
        """Register ``gateway`` and schedule its session start."""
        key = gateway.session_key
        if key in self._gateways:
            raise ValueError(f"session {key} already scheduled")
        self._gateways[key] = gateway
        start_s = gateway.spec.start_s
        if start_s <= self.sim.now:
            self._start(key)
        else:
            self._start_events[key] = self.sim.schedule_at(start_s, self._start, key)

    def remove(self, key: Tuple[int, int]) -> Optional[BaseGateway]:
        """Release the scheduler slot for session ``key`` (cancel support).

        A pending start event is cancelled; a session that already started
        is simply dropped from the table (the caller closes its gateway).
        Returns the gateway that held the slot, or None if unknown.
        """
        gateway = self._gateways.pop(key, None)
        self._started.discard(key)
        event = self._start_events.pop(key, None)
        if event is not None:
            event.cancel()  # type: ignore[attr-defined]
        return gateway

    def _start(self, key: Tuple[int, int]) -> None:
        self._start_events.pop(key, None)
        if key in self._started or key not in self._gateways:
            return
        self._started.add(key)
        self._gateways[key].start()

    def gateway(self, user_id: int, query_id: int) -> BaseGateway:
        """The gateway serving session ``(user_id, query_id)``."""
        return self._gateways[(user_id, query_id)]

    def gateways(self) -> List[BaseGateway]:
        """All registered gateways in session-key order."""
        return [self._gateways[key] for key in sorted(self._gateways)]

    def session_keys(self) -> List[Tuple[int, int]]:
        """All registered ``(user_id, query_id)`` keys, sorted."""
        return sorted(self._gateways)

    def started_count(self) -> int:
        """How many sessions have begun issuing queries."""
        return len(self._started)
