"""The No-Prefetching (NP) baseline from Section 6.2.

Under NP the user simply broadcasts the query into the current query area
at the beginning of every period — no motion profile, no forewarning, no
query tree.  Nodes that hear the query (directly, or via PSM-buffered
delivery at their next beacon wake-up, the 802.11 mechanism that exists
with or without MobiQuery) take a reading inside the freshness window and
route it back to the user individually.

The point of the baseline: with sleep periods several times the query
period, only roughly ``Tperiod / Tsleep`` of the duty-cycled nodes can be
woken in time, so data fidelity is capped far below the 95% success bar —
which is exactly the Figure 4 result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..net.flooding import FloodManager
from ..net.network import Network
from ..net.node import SensorNode
from ..net.packet import BROADCAST, Frame
from ..net.routing import GeoRouter
from ..sim.trace import Tracer
from .messages import (
    NP_QUERY_SIZE_BYTES,
    NP_REPORT_SIZE_BYTES,
    NpQueryMessage,
    NpReportMessage,
)


@dataclass(frozen=True)
class NoPrefetchConfig:
    """Baseline tuning."""

    #: delivery radius when routing a report back toward the user
    relay_radius_m: float = 60.0
    #: random stagger for readings taken at the sense time
    report_jitter_max_s: float = 0.15
    #: how long a woken leaf stays up to transmit its report
    wake_slack_s: float = 0.15


class NoPrefetchProtocol:
    """Node-side handlers for the NP baseline."""

    def __init__(
        self,
        network: Network,
        geo: GeoRouter,
        flood: FloodManager,
        config: Optional[NoPrefetchConfig] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.network = network
        self.geo = geo
        self.flood = flood
        self.config = config or NoPrefetchConfig()
        self.tracer = tracer if tracer is not None else network.tracer
        self.sim = network.sim
        self._seen: Set[Tuple[int, int, int, int]] = set()
        self._pending_batches: Dict[int, List[NpQueryMessage]] = {}
        self._batch_scheduled: Set[int] = set()
        #: sessions torn down by the service; in-flight queries are dropped
        self._dead_sessions: Set[Tuple[int, int]] = set()
        for node in network.nodes:
            node.register_handler("np-query", self._on_query)
            node.register_handler("np-query-batch", self._on_query_batch)
            node.register_handler("np-relay", self._on_relay)

    def release_session(self, user_id: int, query_id: int) -> None:
        """Drop every per-node trace of one session (cancel/teardown).

        Per-query dedup marks are forgotten and the session's broadcasts
        are filtered out of pending sleeper batches; report events already
        scheduled fire into a closed gateway and are ignored there.
        """
        session = (user_id, query_id)
        self._dead_sessions.add(session)
        self._seen = {
            key for key in self._seen if (key[1], key[2]) != session
        }
        for node_id, pending in list(self._pending_batches.items()):
            kept = [m for m in pending if (m.user_id, m.query_id) != session]
            if kept:
                self._pending_batches[node_id] = kept
            else:
                del self._pending_batches[node_id]

    def session_state_count(self, user_id: int, query_id: int) -> int:
        """Dedup marks + buffered queries one session still holds (tests)."""
        session = (user_id, query_id)
        seen = sum(1 for key in self._seen if (key[1], key[2]) == session)
        buffered = sum(
            1
            for pending in self._pending_batches.values()
            for m in pending
            if (m.user_id, m.query_id) == session
        )
        return seen + buffered

    # ------------------------------------------------------------------
    # Query reception
    # ------------------------------------------------------------------
    def _on_query(self, node: SensorNode, frame: Frame) -> None:
        msg: NpQueryMessage = frame.payload
        self._handle_query(node, msg)

    def _on_query_batch(self, node: SensorNode, frame: Frame) -> None:
        batch: Sequence[NpQueryMessage] = frame.payload
        for msg in batch:
            self._handle_query(node, msg)

    def _handle_query(self, node: SensorNode, msg: NpQueryMessage) -> None:
        if (msg.user_id, msg.query_id) in self._dead_sessions:
            return
        key = (node.node_id, msg.user_id, msg.query_id, msg.k)
        if key in self._seen:
            return
        self._seen.add(key)
        if node.position.distance_to(msg.issue_position) > msg.radius_m:
            return  # spatial constraint: batches reach beyond the area edge
        now = self.sim.now
        if now >= msg.deadline - 1e-3:
            return
        if node.is_active:
            self._buffer_for_sleepers(node, msg)
        sense_time = msg.deadline - msg.freshness_s
        if now >= sense_time:
            self._respond(node, msg)
            return
        if node.sleep_scheduler is not None:
            node.sleep_scheduler.add_wake_interval(
                sense_time, min(msg.deadline, sense_time + self.config.wake_slack_s)
            )
        jitter = float(node.rng.uniform(0.0, self.config.report_jitter_max_s))
        self.sim.schedule_at(sense_time + jitter, self._respond, node, msg)

    def _buffer_for_sleepers(self, node: SensorNode, msg: NpQueryMessage) -> None:
        """PSM buffered delivery: re-announce at the next beacon window.

        This is MAC-level behaviour, not prefetching — a sleeping neighbour
        only benefits if its regular wake-up happens to land early enough in
        the current period to still take a fresh reading.
        """
        psm = self.network.config.psm
        now = self.sim.now
        if psm.in_window(now):
            next_window = now  # deliverable right away: sleepers listen now
        else:
            next_window = psm.next_window_start(now)
        if next_window >= msg.deadline - 5e-3:
            return  # the window opens too late to matter for this period
        has_target = any(not nb.is_active for nb in node.neighbors)
        if not has_target:
            return
        self._pending_batches.setdefault(node.node_id, []).append(msg)
        if node.node_id in self._batch_scheduled:
            return
        self._batch_scheduled.add(node.node_id)
        offset = float(node.rng.uniform(2e-3, 0.05))
        self.sim.schedule_at(next_window + offset, self._flush_batch, node)

    def _flush_batch(self, node: SensorNode) -> None:
        self._batch_scheduled.discard(node.node_id)
        pending = self._pending_batches.pop(node.node_id, [])
        now = self.sim.now
        live = [m for m in pending if now < m.deadline - 1e-3]
        if not live:
            return
        frame = Frame(
            kind="np-query-batch",
            src=node.node_id,
            dst=BROADCAST,
            size_bytes=12 + NP_QUERY_SIZE_BYTES * len(live),
            payload=tuple(live),
        )
        node.send(frame)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _respond(self, node: SensorNode, msg: NpQueryMessage) -> None:
        if (msg.user_id, msg.query_id) in self._dead_sessions:
            return  # session torn down after this reading was scheduled
        now = self.sim.now
        if now >= msg.deadline:
            return
        if node.radio.is_sleeping:
            return  # wake override raced the schedule; give up this period
        report = NpReportMessage(
            query_id=msg.query_id,
            k=msg.k,
            node_id=node.node_id,
            value=node.read_sensor(),
            user_id=msg.user_id,
        )
        # Route toward where the user issued the query; the delivering node
        # relays the final hop to the proxy directly.
        if node.position.distance_to(msg.issue_position) <= self.config.relay_radius_m:
            self._relay_to_proxy(node, msg, report)
            return
        self.geo.send(
            origin=node,
            dest=msg.issue_position,
            deliver_radius=self.config.relay_radius_m,
            inner_kind="np-relay",
            inner_payload=(msg, report),
            inner_size=NP_REPORT_SIZE_BYTES,
        )

    def _on_relay(self, node: SensorNode, frame: Frame) -> None:
        msg, report = frame.payload
        self._relay_to_proxy(node, msg, report)

    def _relay_to_proxy(
        self, node: SensorNode, msg: NpQueryMessage, report: NpReportMessage
    ) -> None:
        frame = Frame(
            kind="np-report",
            src=node.node_id,
            dst=msg.proxy_id,
            size_bytes=NP_REPORT_SIZE_BYTES,
            payload=report,
        )
        node.send(frame)
