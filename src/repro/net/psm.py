"""IEEE 802.11 PSM-style sleep scheduling.

Non-backbone nodes duty-cycle their radios: everyone shares a beacon
schedule and is awake for ``active_window_s`` at the start of every
``beacon_interval_s`` (the paper's *sleep period*, 3–15 s against a 100 ms
window, i.e. duty cycles of 3.2 % down to 0.67 %).  Clocks are synchronized
(paper assumption 1), so a backbone node knows exactly when a sleeping
neighbour will listen and can buffer frames until then.

On top of the beacon cycle, MobiQuery's dissemination phase installs **wake
overrides**: a sleeping node told to participate in query ``k`` adds a wake
interval around ``k*Tperiod - Tfresh`` so it can sample its sensor and
report, then drops back to the beacon cycle.  This is the "reconfigure their
sleep schedules to wake up at the right time" mechanic of Section 4.3.

Hot-path layout: clocks are synchronized, so every sleeper on the same
``(beacon_interval, offset, active_window)`` phase crosses its window
boundaries at the same instants.  A shared :class:`WakeWheel` (one per
distinct phase per kernel) therefore schedules ONE kernel event per window
start and ONE per window end and services every registered scheduler from a
batch loop, instead of each node chaining its own boundary events through
the heap.  Wake overrides stay per-node (their times are query-specific):
each installs exactly one start event and one end-check event and never
chains further boundaries, so override-heavy runs scale with the number of
overrides, not overrides x boundaries.  Only a node that cannot sleep yet
(MAC still draining) puts a private retry event on the heap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim.kernel import Simulator
from .mac import MacLayer
from .radio import Radio


@dataclass(frozen=True)
class PsmConfig:
    """Duty-cycle parameters shared by all sleeping nodes.

    ``offset_s`` shifts the whole beacon schedule: windows open at
    ``offset + n * beacon_interval``.  Experiments draw it randomly per run
    so the query start is not artificially aligned with a wake-up window
    (which would hide the warmup phase the paper analyses).
    """

    beacon_interval_s: float = 9.0
    active_window_s: float = 0.1
    offset_s: float = 0.0

    def __post_init__(self) -> None:
        if self.beacon_interval_s <= 0:
            raise ValueError("beacon interval must be > 0")
        if not 0 < self.active_window_s < self.beacon_interval_s:
            raise ValueError("active window must be in (0, beacon_interval)")
        if not 0 <= self.offset_s < self.beacon_interval_s:
            raise ValueError("offset must be in [0, beacon_interval)")

    @property
    def duty_cycle(self) -> float:
        """Fraction of time a sleeper's radio is on under the beacon cycle."""
        return self.active_window_s / self.beacon_interval_s

    #: tolerance for float noise at window boundaries.  A boundary event
    #: scheduled at ``offset + n*T`` can evaluate its own phase to a hair
    #: below ``T`` instead of 0; without folding, the node would neither
    #: wake nor chain the next boundary and its duty cycle would die.
    _BOUNDARY_EPS = 1e-7

    def window_phase(self, t: float) -> float:
        """Time since the most recent window opening at time ``t``."""
        phase = (t - self.offset_s) % self.beacon_interval_s
        if phase >= self.beacon_interval_s - self._BOUNDARY_EPS:
            return 0.0
        return phase

    def in_window(self, t: float) -> bool:
        """Whether the shared beacon window is open at time ``t``."""
        return self.window_phase(t) < self.active_window_s - self._BOUNDARY_EPS

    def next_window_start(self, after: float) -> float:
        """Opening time of the first window strictly after ``after``."""
        shifted = after - self.offset_s
        n = math.floor(shifted / self.beacon_interval_s) + 1
        start = n * self.beacon_interval_s + self.offset_s
        if start <= after + self._BOUNDARY_EPS:
            start += self.beacon_interval_s
        return start


class WakeWheel:
    """Shared beacon-window timer wheel for one ``(interval, offset, window)``
    phase.

    All sleepers on a phase cross window boundaries simultaneously (paper
    assumption 1: synchronized clocks), so the wheel schedules exactly one
    kernel event per distinct window start and one per window end, and
    services every registered :class:`SleepScheduler` from a batch loop in
    registration order — the same node-id order the per-node boundary
    events used to fire in, so downstream event sequences are unchanged.
    Nodes with nothing to do at a boundary (already awake, kept awake by an
    override) are skipped inside the loop without ever touching the heap.
    """

    __slots__ = ("sim", "config", "_schedulers", "_armed")

    def __init__(self, sim: Simulator, config: PsmConfig) -> None:
        self.sim = sim
        self.config = config
        self._schedulers: List["SleepScheduler"] = []
        self._armed = False

    @classmethod
    def shared(cls, sim: Simulator, config: PsmConfig) -> "WakeWheel":
        """The kernel-wide wheel for ``config``'s phase (created on demand).

        Wheels are keyed by ``(beacon_interval, offset, active_window)`` on
        the kernel instance itself, so schedulers built independently (the
        network builder, tests constructing :class:`SleepScheduler`
        directly) still coalesce onto one event chain per phase.
        """
        registry = getattr(sim, "_psm_wheels", None)
        if registry is None:
            registry = {}
            sim._psm_wheels = registry  # type: ignore[attr-defined]
        key = (config.beacon_interval_s, config.offset_s, config.active_window_s)
        wheel = registry.get(key)
        if wheel is None:
            wheel = cls(sim, config)
            registry[key] = wheel
        return wheel

    @property
    def schedulers(self) -> Tuple["SleepScheduler", ...]:
        """Schedulers serviced by this wheel, in registration order."""
        return tuple(self._schedulers)

    def register(self, scheduler: "SleepScheduler") -> None:
        """Add ``scheduler`` to the wheel; arm the event chain on first use."""
        self._schedulers.append(scheduler)
        if self._armed:
            return
        self._armed = True
        now = self.sim.now
        cfg = self.config
        if cfg.in_window(now):
            # Close out the window already underway for the whole cohort.
            end = now - cfg.window_phase(now) + cfg.active_window_s
            self.sim.schedule_at_fast(end, self._on_window_end)
        self.sim.schedule_at_fast(cfg.next_window_start(now), self._on_window_start)

    def _on_window_start(self) -> None:
        # One event per distinct boundary: wake the whole cohort, then chain
        # the window end and the next start.  next_window_start recomputes
        # ``offset + n*interval`` from scratch, so the chain cannot drift.
        now = self.sim.now
        for scheduler in self._schedulers:
            scheduler.radio.wake()
        cfg = self.config
        self.sim.schedule_at_fast(now + cfg.active_window_s, self._on_window_end)
        self.sim.schedule_at_fast(cfg.next_window_start(now), self._on_window_start)

    def _on_window_end(self) -> None:
        # Batch sleep check: schedulers kept awake by an override return
        # immediately (that override's own end-check event will retire
        # them); only a MAC-busy node schedules a private retry.
        for scheduler in self._schedulers:
            scheduler._maybe_sleep()


class SleepScheduler:
    """Drives one sleeper's radio through the beacon cycle plus overrides."""

    #: how long to postpone a due sleep while the MAC is still draining
    _SLEEP_RETRY_S = 1e-3

    def __init__(
        self,
        sim: Simulator,
        radio: Radio,
        mac: MacLayer,
        config: PsmConfig,
        wheel: Optional[WakeWheel] = None,
    ) -> None:
        self.sim = sim
        self.radio = radio
        self.mac = mac
        self.config = config
        self.wheel = wheel if wheel is not None else WakeWheel.shared(sim, config)
        self._overrides: List[Tuple[float, float]] = []
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the duty cycle.  The radio sleeps outside scheduled windows.

        Joining the shared :class:`WakeWheel` replaces the per-node
        boundary chain: the wheel wakes this radio at every window start
        and runs the sleep check at every window end.
        """
        if self._started:
            raise RuntimeError("sleep scheduler already started")
        self._started = True
        if self.is_scheduled_awake(self.sim.now):
            self.radio.wake()
        else:
            self.radio.sleep()
        self.wheel.register(self)

    # ------------------------------------------------------------------
    # Schedule queries (usable by other nodes thanks to clock sync)
    # ------------------------------------------------------------------
    def beacon_window_start(self, index: int) -> float:
        """Start time of beacon window ``index``."""
        return index * self.config.beacon_interval_s + self.config.offset_s

    def is_scheduled_awake(self, t: float) -> bool:
        """Whether the schedule has the node awake at time ``t``."""
        # config.in_window inlined: this runs on every wake boundary and
        # sleep attempt for every sleeper.
        cfg = self.config
        interval = cfg.beacon_interval_s
        eps = cfg._BOUNDARY_EPS
        phase = (t - cfg.offset_s) % interval
        if phase >= interval - eps:
            phase = 0.0
        if phase < cfg.active_window_s - eps:
            return True
        for start, end in self._overrides:
            if start - 1e-12 <= t < end - 1e-12:
                return True
        return False

    def next_window_start(self, after: float) -> float:
        """Earliest scheduled wake boundary strictly relevant after ``after``.

        Returns the start of the next beacon window or override, whichever
        comes first.  If ``after`` falls inside a window, returns the next
        *future* boundary (delivery planners call this only when the target
        is asleep).
        """
        # PsmConfig.next_window_start inlined (identical arithmetic): this
        # chains every sleeper's beacon cycle, once per boundary event.
        cfg = self.config
        interval = cfg.beacon_interval_s
        offset = cfg.offset_s
        shifted = after - offset
        best = (math.floor(shifted / interval) + 1) * interval + offset
        if best <= after + cfg._BOUNDARY_EPS:
            best += interval
        for start, _end in self._overrides:
            if after < start < best:
                best = start
        return best

    def earliest_listen_time(self, after: float) -> float:
        """Earliest time >= ``after`` when the node is scheduled to listen."""
        if self.is_scheduled_awake(after):
            return after
        return self.next_window_start(after)

    # ------------------------------------------------------------------
    # Overrides
    # ------------------------------------------------------------------
    def add_wake_interval(self, start: float, end: float) -> None:
        """Schedule an extra listening interval ``[start, end)``.

        Intervals in the past are ignored; an interval already underway
        wakes the radio immediately.  Each override costs exactly one wake
        event (skipped when already underway) and one end-check event —
        overrides never chain further boundaries, the shared wheel owns the
        beacon cycle.
        """
        if end <= start:
            raise ValueError(f"empty wake interval [{start}, {end})")
        now = self.sim.now
        if end <= now:
            return
        self._overrides.append((start, end))
        if start <= now:
            self.radio.wake()
            self.sim.schedule_at_fast(end, self._maybe_sleep)
        else:
            self.sim.schedule_at_fast(start, self._on_override_start, end)
        self._prune_overrides(now)

    def _on_override_start(self, end: float) -> None:
        # The override's wake moment: wake the radio and arm the end check.
        # If other overrides or a beacon window keep the node awake past
        # ``end``, the check returns and their own end events take over —
        # every awake stretch always ends at some override end or window
        # end, and each of those times has an event.
        self._prune_overrides(self.sim.now)
        self.radio.wake()
        self.sim.schedule_at_fast(end, self._maybe_sleep)

    def _prune_overrides(self, now: float) -> None:
        overrides = self._overrides
        if not overrides:
            return
        for _start, end in overrides:
            if end <= now:
                self._overrides = [(s, e) for s, e in overrides if e > now]
                return

    # ------------------------------------------------------------------
    # Boundary events (beacon boundaries are driven by the shared wheel)
    # ------------------------------------------------------------------
    def _maybe_sleep(self) -> None:
        now = self.sim.now
        if self.is_scheduled_awake(now):
            return  # an override extended the window; its own end event fires later
        mac = self.mac
        radio = self.radio
        if mac._busy or mac._queue or radio.is_transmitting or radio.rx_count:
            # Drain in-flight work before powering down; bounded in practice
            # because sleepers only ever queue a handful of frames.
            self.sim.schedule_fast(self._SLEEP_RETRY_S, self._maybe_sleep)
            return
        radio.sleep()


def delivery_time(scheduler: Optional[SleepScheduler], now: float) -> float:
    """When a frame for this node can first be transmitted.

    Backbone nodes (``scheduler is None``) are always reachable; sleepers are
    reachable at their next scheduled listening time.  Synchronized clocks
    make this knowable by any sender, standing in for the PSM ATIM handshake.
    """
    if scheduler is None:
        return now
    return scheduler.earliest_listen_time(now)
