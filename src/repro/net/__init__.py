"""Wireless network substrate: channel, MAC, PSM, energy, nodes, routing."""

from .channel import BroadcastReception, Channel, Reception
from .energy import PAPER_POWER_MODEL, EnergyMeter, PowerModel, RadioState
from .field import (
    GradientField,
    Hotspot,
    HotspotField,
    ScalarField,
    UniformField,
    fire_scenario_field,
)
from .flooding import FloodEnvelope, FloodManager
from .mac import MacConfig, MacLayer
from .network import Network, NetworkConfig, build_network, uniform_positions
from .node import ROLE_ACTIVE, ROLE_SLEEPER, MobileEndpoint, SensorNode
from .packet import ACK_SIZE_BYTES, BROADCAST, MAC_HEADER_BYTES, Frame
from .psm import PsmConfig, SleepScheduler, WakeWheel, delivery_time
from .radio import Radio
from .routing import GeoEnvelope, GeoRouter

__all__ = [
    "BroadcastReception",
    "Channel",
    "Reception",
    "EnergyMeter",
    "PowerModel",
    "PAPER_POWER_MODEL",
    "RadioState",
    "ScalarField",
    "UniformField",
    "GradientField",
    "Hotspot",
    "HotspotField",
    "fire_scenario_field",
    "FloodManager",
    "FloodEnvelope",
    "MacConfig",
    "MacLayer",
    "Network",
    "NetworkConfig",
    "build_network",
    "uniform_positions",
    "SensorNode",
    "MobileEndpoint",
    "ROLE_ACTIVE",
    "ROLE_SLEEPER",
    "Frame",
    "BROADCAST",
    "MAC_HEADER_BYTES",
    "ACK_SIZE_BYTES",
    "PsmConfig",
    "SleepScheduler",
    "WakeWheel",
    "delivery_time",
    "Radio",
    "GeoRouter",
    "GeoEnvelope",
]
