"""Per-node radio: power states, half-duplex rule, reception health.

The radio is where the channel's physical effects and the PSM sleep schedule
meet.  It owns exactly one invariant the rest of the stack relies on: a
frame is delivered only if its receiver stayed in a listening state
(``IDLE``/``RX``) for the frame's whole airtime and no overlapping in-range
transmission corrupted it.  Falling asleep or starting a transmission
mid-reception kills the reception — that is how duty cycling destroys naive
query dissemination in the paper's motivating example.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..sim.kernel import Simulator
from .energy import EnergyMeter, PowerModel, RadioState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .channel import BroadcastReception, Reception


class Radio:
    """Radio state machine for one endpoint."""

    def __init__(
        self,
        sim: Simulator,
        owner_id: int,
        power_model: PowerModel,
        initial_state: RadioState = RadioState.IDLE,
    ) -> None:
        self.sim = sim
        self.owner_id = owner_id
        self.energy = EnergyMeter(sim, power_model)
        self._state = initial_state
        #: plain-attribute mirror of ``is_listening`` — the channel reads it
        #: once per potential listener per transmission, where a property
        #: call is measurable; maintained by ``set_state``.
        self.listening = initial_state in (RadioState.IDLE, RadioState.RX)
        self.energy.on_state_change(initial_state)
        #: number of receptions currently in flight at this radio, batched
        #: (channel hot path) and object-based (legacy API) combined.  The
        #: channel and the PSM sleep check read this instead of a list.
        self.rx_count = 0
        # The radio's single still-clean batched reception, as a record
        # reference plus its index in the record's parallel arrays.  Two
        # overlapping frames corrupt each other, so at most one in-flight
        # reception is ever clean; corrupting events (a second frame
        # starting, the radio leaving a listening state) flip the flags in
        # the record directly and clear this slot.
        self._rx_record: Optional["BroadcastReception"] = None
        self._rx_index = -1
        #: object-per-reception API receptions in flight (tests, external
        #: callers); the simulation hot path never populates this list
        self.active_receptions: List["Reception"] = []

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def state(self) -> RadioState:
        return self._state

    @property
    def is_sleeping(self) -> bool:
        return self._state is RadioState.SLEEP

    @property
    def is_transmitting(self) -> bool:
        return self._state is RadioState.TX

    @property
    def is_listening(self) -> bool:
        """Whether the radio could begin receiving a frame right now."""
        return self.listening

    def set_state(self, new_state: RadioState) -> None:
        """Transition the radio, corrupting in-flight receptions if needed.

        Any transition out of a listening state (to ``TX`` or ``SLEEP``)
        corrupts receptions in progress: the receiver stopped listening
        before the frame ended.
        """
        if new_state is self._state:
            return
        if new_state is RadioState.TX or new_state is RadioState.SLEEP:
            if self.active_receptions:
                for reception in self.active_receptions:
                    reception.corrupt("receiver_left_listening")
            record = self._rx_record
            if record is not None:
                # The one still-clean batched reception dies with the
                # listening state; already-corrupt ones need no touch.
                record.corrupt[self._rx_index] = True
                record.reasons[self._rx_index] = "receiver_left_listening"
                self._rx_record = None
            self.listening = False
        else:
            self.listening = True
        self._state = new_state
        # Energy integration inlined (EnergyMeter.on_state_change semantics):
        # radio transitions are the single most frequent state change in a
        # run and the extra call per transition is measurable.
        energy = self.energy
        now = self.sim.now
        elapsed = now - energy._state_since
        if elapsed > 0:
            energy._joules += elapsed * energy._state_w
            state = energy._state
            if state is RadioState.IDLE:
                energy._idle_s += elapsed
            elif state is RadioState.SLEEP:
                energy._sleep_s += elapsed
            elif state is RadioState.RX:
                energy._rx_s += elapsed
            else:
                energy._tx_s += elapsed
            energy._state_since = now
        energy._state = new_state
        model = energy.model
        if new_state is RadioState.IDLE:
            energy._state_w = model.idle_w
        elif new_state is RadioState.SLEEP:
            energy._state_w = model.sleep_w
        elif new_state is RadioState.RX:
            energy._state_w = model.rx_w
        else:
            energy._state_w = model.tx_w

    # ------------------------------------------------------------------
    # Channel integration
    # ------------------------------------------------------------------
    def begin_batch_reception(
        self, record: "BroadcastReception", listener: object
    ) -> None:
        """Join ``record``'s receiver cohort (batch begin, cold paths).

        Same semantics as the inlined block in ``Channel.transmit``'s
        static-listener loop — overlap corruption against whatever is in
        flight, clean-slot tracking, IDLE->RX — as a plain method for the
        loops that are not hot (mobile listeners: one proxy per user).
        The caller must have checked ``listening``.
        """
        n = self.rx_count
        self.rx_count = n + 1
        if n:
            record.corrupt.append(True)
            record.reasons.append("overlap")
            prev = self._rx_record
            if prev is not None:
                prev.corrupt[self._rx_index] = True
                prev.reasons[self._rx_index] = "overlap"
                self._rx_record = None
            if self.active_receptions:
                for other in self.active_receptions:
                    other.corrupt("overlap")
        else:
            record.corrupt.append(False)
            record.reasons.append(None)
            self._rx_record = record
            self._rx_index = len(record.receivers)
        record.receivers.append(listener)
        if self._state is RadioState.IDLE:
            self.set_state(RadioState.RX)

    def begin_reception(self, reception: "Reception") -> None:
        """A frame started arriving while we listened (object-based API).

        The channel's hot path batches receptions per frame instead (see
        :class:`~repro.net.channel.BroadcastReception`); this entry point
        keeps the same overlap semantics for object-based callers and
        interoperates with any batched reception in flight.
        """
        if self.rx_count:
            # Overlap: everything in flight at this radio is garbage.
            reception.corrupt("overlap")
            for other in self.active_receptions:
                other.corrupt("overlap")
            record = self._rx_record
            if record is not None:
                record.corrupt[self._rx_index] = True
                record.reasons[self._rx_index] = "overlap"
                self._rx_record = None
        self.active_receptions.append(reception)
        self.rx_count += 1
        if self._state is RadioState.IDLE:
            self.set_state(RadioState.RX)

    def end_reception(self, reception: "Reception") -> None:
        """The frame's airtime elapsed (object-based API)."""
        try:
            self.active_receptions.remove(reception)
        except ValueError:
            pass
        else:
            self.rx_count -= 1
        if not self.rx_count and self._state is RadioState.RX:
            self.set_state(RadioState.IDLE)

    def set_state_tx_guarded(self) -> None:
        """Enter TX, rejecting physically impossible transitions.

        Raises:
            RuntimeError: if asleep (a sleeping radio cannot transmit) or
                already transmitting (the MAC serializes transmissions).
        """
        if self._state is RadioState.SLEEP:
            raise RuntimeError(f"radio {self.owner_id} cannot transmit while asleep")
        if self._state is RadioState.TX:
            raise RuntimeError(f"radio {self.owner_id} is already transmitting")
        self.set_state(RadioState.TX)

    def end_transmission(self) -> None:
        """Return to idle after a transmission (no-op if forced asleep)."""
        if self._state is RadioState.TX:
            self.set_state(RadioState.IDLE)

    def sleep(self) -> None:
        """Enter the sleep state (corrupts in-flight receptions)."""
        self.set_state(RadioState.SLEEP)

    def wake(self) -> None:
        """Leave sleep for idle listening.  No effect in TX/RX/IDLE."""
        if self._state is RadioState.SLEEP:
            self.set_state(RadioState.IDLE)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Radio node={self.owner_id} {self._state.value}>"
