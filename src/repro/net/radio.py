"""Per-node radio: power states, half-duplex rule, reception health.

The radio is where the channel's physical effects and the PSM sleep schedule
meet.  It owns exactly one invariant the rest of the stack relies on: a
frame is delivered only if its receiver stayed in a listening state
(``IDLE``/``RX``) for the frame's whole airtime and no overlapping in-range
transmission corrupted it.  Falling asleep or starting a transmission
mid-reception kills the reception — that is how duty cycling destroys naive
query dissemination in the paper's motivating example.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..sim.kernel import Simulator
from .energy import EnergyMeter, PowerModel, RadioState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .channel import Reception


class Radio:
    """Radio state machine for one endpoint."""

    def __init__(
        self,
        sim: Simulator,
        owner_id: int,
        power_model: PowerModel,
        initial_state: RadioState = RadioState.IDLE,
    ) -> None:
        self.sim = sim
        self.owner_id = owner_id
        self.energy = EnergyMeter(sim, power_model)
        self._state = initial_state
        self.energy.on_state_change(initial_state)
        #: receptions currently in flight at this radio (managed by Channel)
        self.active_receptions: List["Reception"] = []

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def state(self) -> RadioState:
        return self._state

    @property
    def is_sleeping(self) -> bool:
        return self._state is RadioState.SLEEP

    @property
    def is_transmitting(self) -> bool:
        return self._state is RadioState.TX

    @property
    def is_listening(self) -> bool:
        """Whether the radio could begin receiving a frame right now."""
        return self._state in (RadioState.IDLE, RadioState.RX)

    def set_state(self, new_state: RadioState) -> None:
        """Transition the radio, corrupting in-flight receptions if needed.

        Any transition out of a listening state (to ``TX`` or ``SLEEP``)
        corrupts receptions in progress: the receiver stopped listening
        before the frame ended.
        """
        if new_state is self._state:
            return
        if new_state in (RadioState.TX, RadioState.SLEEP):
            for reception in self.active_receptions:
                reception.corrupt("receiver_left_listening")
        self._state = new_state
        self.energy.on_state_change(new_state)

    # ------------------------------------------------------------------
    # Channel integration
    # ------------------------------------------------------------------
    def begin_reception(self, reception: "Reception") -> None:
        """Channel callback: a frame started arriving while we listened."""
        if self.active_receptions:
            # Overlap: everything in flight at this radio is garbage.
            reception.corrupt("overlap")
            for other in self.active_receptions:
                other.corrupt("overlap")
        self.active_receptions.append(reception)
        if self._state is RadioState.IDLE:
            self.set_state(RadioState.RX)

    def end_reception(self, reception: "Reception") -> None:
        """Channel callback: the frame's airtime elapsed."""
        if reception in self.active_receptions:
            self.active_receptions.remove(reception)
        if not self.active_receptions and self._state is RadioState.RX:
            self.set_state(RadioState.IDLE)

    def set_state_tx_guarded(self) -> None:
        """Enter TX, rejecting physically impossible transitions.

        Raises:
            RuntimeError: if asleep (a sleeping radio cannot transmit) or
                already transmitting (the MAC serializes transmissions).
        """
        if self._state is RadioState.SLEEP:
            raise RuntimeError(f"radio {self.owner_id} cannot transmit while asleep")
        if self._state is RadioState.TX:
            raise RuntimeError(f"radio {self.owner_id} is already transmitting")
        self.set_state(RadioState.TX)

    def end_transmission(self) -> None:
        """Return to idle after a transmission (no-op if forced asleep)."""
        if self._state is RadioState.TX:
            self.set_state(RadioState.IDLE)

    def sleep(self) -> None:
        """Enter the sleep state (corrupts in-flight receptions)."""
        self.set_state(RadioState.SLEEP)

    def wake(self) -> None:
        """Leave sleep for idle listening.  No effect in TX/RX/IDLE."""
        if self._state is RadioState.SLEEP:
            self.set_state(RadioState.IDLE)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Radio node={self.owner_id} {self._state.value}>"
