"""CSMA/CA MAC layer.

A non-persistent CSMA model of 802.11 DCF, with the features the paper's
results depend on and nothing else:

* carrier sense before transmitting, with DIFS + slotted random backoff,
* binary exponential backoff on retries,
* unicast frames acknowledged after SIFS, retransmitted up to a retry
  limit, with a success/failure callback so routing can fail over,
* broadcast frames sent once, unacknowledged (flood losses under
  contention are real losses — the mechanism behind MQ-GP's degradation),
* duplicate suppression at the receiver (a retransmitted frame whose ACK
  was lost is re-ACKed but not re-dispatched).

The contention model: a sender samples a backoff delay, then senses the
medium again immediately before transmitting.  Two senders whose backoffs
expire within the same slot both see the medium idle and collide at common
receivers; hidden terminals collide regardless of carrier sense.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional, Tuple

import numpy as np

from ..sim.kernel import EventHandle, Simulator
from ..sim.trace import Tracer
from .channel import Channel, ChannelEndpoint
from .packet import ACK_SIZE_BYTES, BROADCAST, Frame

#: Callback fired when a frame's MAC-level fate is known.
SendCallback = Callable[[bool], None]


@dataclass(frozen=True)
class MacConfig:
    """Tunable MAC timing and retry parameters (802.11-flavoured defaults)."""

    slot_s: float = 20e-6
    sifs_s: float = 10e-6
    difs_s: float = 50e-6
    cw_min: int = 16
    cw_max: int = 1024
    retry_limit: int = 7
    #: extra ACK wait slack beyond SIFS + ACK airtime
    ack_slack_s: float = 60e-6
    #: how many recently seen (src, seq) pairs to remember for dedupe
    dedupe_window: int = 64


class MacLayer:
    """One endpoint's MAC: transmit queue, carrier sense, ACKs, dedupe."""

    def __init__(
        self,
        endpoint: ChannelEndpoint,
        sim: Simulator,
        channel: Channel,
        rng: np.random.Generator,
        config: Optional[MacConfig] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.endpoint = endpoint
        self.sim = sim
        self.channel = channel
        self.rng = rng
        self.config = config or MacConfig()
        self.tracer = tracer
        self._queue: Deque[Tuple[Frame, Optional[SendCallback]]] = deque()
        self._busy = False
        self._current: Optional[Tuple[Frame, Optional[SendCallback]]] = None
        self._retries = 0
        self._cw = self.config.cw_min
        self._ack_timer: Optional[EventHandle] = None
        self._awaited_ack_seq: Optional[int] = None
        self._seen: Deque[Tuple[int, int]] = deque(maxlen=self.config.dedupe_window)
        self._seen_set: set = set()
        #: upward delivery target, set by the owning node
        self.receive_callback: Optional[Callable[[Frame], None]] = None
        # Counters for diagnostics / tests.
        self.unicast_failures = 0
        self.frames_queued = 0

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    @property
    def is_idle(self) -> bool:
        """Whether the MAC has nothing queued or in flight."""
        return not self._busy and not self._queue

    @property
    def queue_length(self) -> int:
        return len(self._queue) + (1 if self._busy else 0)

    def send(self, frame: Frame, callback: Optional[SendCallback] = None) -> None:
        """Queue ``frame`` for transmission.

        ``callback(True)`` fires when the frame was sent (broadcast) or
        acknowledged (unicast); ``callback(False)`` when the retry limit was
        exhausted.
        """
        self.frames_queued += 1
        self._queue.append((frame, callback))
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        if self._busy or not self._queue:
            return
        self._busy = True
        self._current = self._queue.popleft()
        self._retries = 0
        self._cw = self.config.cw_min
        self._schedule_attempt(first=True)

    def _schedule_attempt(self, first: bool) -> None:
        cfg = self.config
        backoff_slots = int(self.rng.integers(0, self._cw))
        delay = cfg.difs_s + backoff_slots * cfg.slot_s
        if not first:
            # After sensing busy, also wait out the current occupancy.
            busy_until = self.channel.busy_until(self.endpoint)
            if busy_until is not None:
                delay += max(0.0, busy_until - self.sim.now)
        self.sim.schedule_fast(delay, self._attempt_transmit)

    def _attempt_transmit(self) -> None:
        assert self._current is not None
        if self.endpoint.radio.is_sleeping:
            # Radio was put to sleep while we waited: fail the frame rather
            # than transmit impossibly.  PSM-aware senders avoid this path.
            self._finish_current(False)
            return
        if self.endpoint.radio.is_transmitting or self.channel.medium_busy(self.endpoint):
            # Non-persistent CSMA: resample backoff, wait out the medium.
            self._schedule_attempt(first=False)
            return
        frame, _ = self._current
        if frame.is_broadcast:
            # Broadcast completion rides the channel's end-of-airtime batch
            # event (it used to be a second kernel event at the identical
            # instant and adjacent sequence number — same execution order,
            # one event per frame saved).
            self.channel.transmit(self.endpoint, frame, self._finish_broadcast)
            return
        airtime = self.channel.transmit(self.endpoint, frame)
        ack_wait = (
            airtime
            + self.config.sifs_s
            + self.channel.airtime(self._ack_frame_for(frame))
            + self.config.ack_slack_s
        )
        self._awaited_ack_seq = frame.seq
        self._ack_timer = self.sim.schedule(ack_wait, self._on_ack_timeout)

    def _finish_broadcast(self) -> None:
        """Channel batch callback: our broadcast's airtime elapsed."""
        self._finish_current(True)

    def _ack_frame_for(self, frame: Frame) -> Frame:
        return Frame(
            kind="mac-ack",
            src=self.endpoint.node_id,
            dst=frame.src,
            size_bytes=ACK_SIZE_BYTES,
            payload=frame.seq,
        )

    def _on_ack_timeout(self) -> None:
        self._ack_timer = None
        self._awaited_ack_seq = None
        self._retries += 1
        if self._retries > self.config.retry_limit:
            self.unicast_failures += 1
            if self.tracer is not None:
                assert self._current is not None
                self.tracer.emit(
                    "mac-fail",
                    self.sim.now,
                    src=self.endpoint.node_id,
                    dst=self._current[0].dst,
                    frame_kind=self._current[0].kind,
                )
            self._finish_current(False)
            return
        self._cw = min(self._cw * 2, self.config.cw_max)
        self._schedule_attempt(first=False)

    def _finish_current(self, success: bool) -> None:
        current, self._current = self._current, None
        self._busy = False
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        self._awaited_ack_seq = None
        if current is not None and current[1] is not None:
            current[1](success)
        if self._queue:
            self._start_next()

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def on_frame(self, frame: Frame) -> None:
        """Channel delivery: filter, ACK, dedupe, dispatch upward."""
        dst = frame.dst
        if frame.kind == "mac-ack":
            if dst == self.endpoint.node_id and frame.payload == self._awaited_ack_seq:
                if self._ack_timer is not None:
                    self._ack_timer.cancel()
                    self._ack_timer = None
                self._finish_current(True)
            return
        if dst != BROADCAST:
            if dst != self.endpoint.node_id:
                return
            # ACK even duplicates: the sender may have missed our first ACK.
            self.sim.schedule_fast(self.config.sifs_s, self._send_ack, frame)
        key = (frame.src, frame.seq)
        if key in self._seen_set:
            return
        seen = self._seen
        if len(seen) == seen.maxlen:
            self._seen_set.discard(seen[0])
        seen.append(key)
        self._seen_set.add(key)
        if self.receive_callback is not None:
            self.receive_callback(frame)

    def _send_ack(self, frame: Frame) -> None:
        radio = self.endpoint.radio
        if radio.is_transmitting or radio.is_sleeping:
            # Cannot ACK right now; the sender will retransmit.
            return
        self.channel.transmit(self.endpoint, self._ack_frame_for(frame))
