"""Frames exchanged over the simulated radio.

A :class:`Frame` is the unit the MAC transmits: an application ``kind`` tag,
link-layer source/destination, a wire size used to compute airtime, and an
arbitrary ``payload`` object interpreted by the protocol handler registered
for the kind.  Sizes are modelled (they determine airtime and therefore
contention), contents are not serialized — payloads travel by reference,
which is standard for packet-level simulators.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

#: Link-layer broadcast address.
BROADCAST = -1

#: Bytes of MAC/PHY framing added to every transmission.
MAC_HEADER_BYTES = 18

#: Wire size of an acknowledgement frame.
ACK_SIZE_BYTES = 14

_frame_seq = itertools.count(1)


@dataclass(slots=True)
class Frame:
    """One link-layer frame.

    Attributes:
        kind: application protocol tag, e.g. ``"prefetch"`` or ``"setup"``.
        src: sending node id.
        dst: receiving node id, or :data:`BROADCAST`.
        size_bytes: application payload size on the wire (MAC header is
            added by the channel when computing airtime).
        payload: protocol-specific message object, carried by reference.
        seq: globally unique frame id (assigned automatically).
    """

    kind: str
    src: int
    dst: int
    size_bytes: int
    payload: Any = None
    seq: int = field(default_factory=lambda: next(_frame_seq))

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"frame size must be >= 0, got {self.size_bytes}")

    @property
    def is_broadcast(self) -> bool:
        """Whether the frame is link-layer broadcast."""
        return self.dst == BROADCAST

    def wire_bytes(self) -> int:
        """Total bytes on air including MAC/PHY framing."""
        return self.size_bytes + MAC_HEADER_BYTES

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dst = "BCAST" if self.is_broadcast else str(self.dst)
        return f"<Frame #{self.seq} {self.kind} {self.src}->{dst} {self.size_bytes}B>"
