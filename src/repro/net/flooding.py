"""Scoped flooding within a geographic area.

Used by the No-Prefetching baseline (the user broadcasts the query into the
current query area each period) and by MobiQuery's *cancel* messages along
abandoned paths.  Every node inside the scope rebroadcasts a given flood id
exactly once, with a small random jitter so that simultaneous rebroadcasts
don't self-collide deterministically.

Query-tree *setup* flooding lives in :mod:`repro.core.service` instead
— it needs parent selection and per-tree bookkeeping this generic flood does
not carry.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set

from ..geometry.shapes import Circle
from ..sim.trace import Tracer
from .network import Network
from .node import SensorNode
from .packet import BROADCAST, Frame

#: wire overhead of the flood envelope beyond the inner message
FLOOD_HEADER_BYTES = 10

_flood_ids = itertools.count(1)


@dataclass(frozen=True)
class FloodEnvelope:
    """A flooded message: scope circle plus the inner application message."""

    flood_id: int
    area: Circle
    inner_kind: str
    inner_payload: Any
    inner_size: int
    active_only: bool

    def wire_size(self) -> int:
        """Bytes on the air."""
        return self.inner_size + FLOOD_HEADER_BYTES


class FloodManager:
    """Best-effort scoped flooding (one manager per run)."""

    FRAME_KIND = "flood"

    def __init__(self, network: Network, tracer: Optional[Tracer] = None) -> None:
        self.network = network
        self.tracer = tracer if tracer is not None else network.tracer
        self._seen: Dict[int, Set[int]] = {}
        # Floods torn down via release(): frames still in flight must be
        # dropped, not treated as a brand-new flood (setdefault in _accept
        # would otherwise restart the relay wave and leak a dedup entry).
        self._released: Set[int] = set()
        for node in network.nodes:
            node.register_handler(self.FRAME_KIND, self._on_frame)

    def start_flood(
        self,
        area: Circle,
        inner_kind: str,
        inner_payload: Any,
        inner_size: int,
        origin: Optional[SensorNode] = None,
        active_only: bool = True,
    ) -> FloodEnvelope:
        """Begin a flood of ``inner_*`` over ``area``.

        Args:
            area: geographic scope; only nodes inside rebroadcast/deliver.
            inner_kind: handler kind invoked at every covered node.
            inner_payload: message object (by reference).
            inner_size: payload wire size in bytes.
            origin: node that initiates the flood.  When omitted, the flood
                is *injected* at every awake node in the area closest to the
                centre — callers flooding from a mobile proxy instead send a
                broadcast frame of kind ``"flood"`` themselves.
            active_only: if True only backbone nodes rebroadcast (sleepers
                can still *hear* and deliver if awake).
        """
        envelope = FloodEnvelope(
            flood_id=next(_flood_ids),
            area=area,
            inner_kind=inner_kind,
            inner_payload=inner_payload,
            inner_size=inner_size,
            active_only=active_only,
        )
        self._seen[envelope.flood_id] = set()
        if origin is not None:
            self._accept(origin, envelope)
        return envelope

    def make_frame(self, src_id: int, envelope: FloodEnvelope) -> Frame:
        """A broadcast frame carrying ``envelope`` (for proxy-originated floods)."""
        return Frame(
            kind=self.FRAME_KIND,
            src=src_id,
            dst=BROADCAST,
            size_bytes=envelope.wire_size(),
            payload=envelope,
        )

    def register_envelope(self, envelope: FloodEnvelope) -> None:
        """Track an externally created envelope (proxy-originated flood)."""
        self._seen.setdefault(envelope.flood_id, set())

    def release(self, flood_id: int) -> None:
        """Drop the dedup state of one flood (session cancel/teardown).

        The flood is also marked dead: frames of it still in flight (or
        rebroadcast events still pending) are discarded on arrival instead
        of restarting the relay wave.  One integer per released flood.
        """
        self._seen.pop(flood_id, None)
        self._released.add(flood_id)

    def live_flood_count(self) -> int:
        """Floods with dedup state still held (tests, teardown assertions)."""
        return len(self._seen)

    # ------------------------------------------------------------------
    # Flood engine
    # ------------------------------------------------------------------
    def _on_frame(self, node: SensorNode, frame: Frame) -> None:
        envelope: FloodEnvelope = frame.payload
        self._accept(node, envelope)

    def _accept(self, node: SensorNode, envelope: FloodEnvelope) -> None:
        if envelope.flood_id in self._released:
            return  # torn down; a straggler frame must not re-seed the flood
        seen = self._seen.setdefault(envelope.flood_id, set())
        if node.node_id in seen:
            return
        seen.add(node.node_id)
        if not envelope.area.contains(node.position):
            return
        node.handle_local(envelope.inner_kind, envelope.inner_payload, envelope.inner_size)
        if envelope.active_only and not node.is_active:
            return
        jitter = float(node.rng.uniform(5e-4, 4e-3))
        node.sim.schedule(jitter, self._rebroadcast, node, envelope)

    #: deferred-rebroadcast retries for a node that is *crashed* (not merely
    #: duty-cycled) at its slot — it may recover and still widen coverage
    _CRASH_RETRIES = 2
    _CRASH_RETRY_S = 1.0

    def _rebroadcast(
        self, node: SensorNode, envelope: FloodEnvelope, retries: int = _CRASH_RETRIES
    ) -> None:
        if envelope.flood_id in self._released:
            return
        if node.crashed:
            # Fault-plane death, not PSM sleep: defer a bounded number of
            # times in case the node recovers while the flood is still
            # live.  Ordinary sleepers keep the silent skip below — this
            # branch is unreachable without an active fault plan.
            if retries > 0:
                node.sim.schedule(
                    self._CRASH_RETRY_S, self._rebroadcast, node, envelope, retries - 1
                )
            return
        if node.radio.is_sleeping:
            return
        node.send(self.make_frame(node.node_id, envelope))
