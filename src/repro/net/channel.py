"""Wireless channel: unit-disk propagation, airtime, receiver-side collisions.

The channel is the broker between transmitting radios and listening ones:

* **Propagation** is the unit-disk model the paper's ns-2 setup approximates
  (communication range ``Rc = 105 m`` in the evaluation).  Propagation delay
  is negligible at these ranges and is folded into airtime.
* **Airtime** is ``preamble + 8 * wire_bytes / bitrate`` (2 Mb/s in the
  paper's simulations).
* **Collisions** are detected per receiver: two frames overlapping in time
  at a listening radio corrupt each other.  There is no capture effect,
  matching the default ns-2 two-state model the paper used.
* **Carrier sense**: a node senses the medium busy when any in-range
  transmission is in flight.  Senders that honour carrier sense therefore
  collide mainly through hidden terminals and same-slot backoff expiry —
  the loss mechanism behind MQ-GP's fidelity variance in Figure 5.

Static sensor nodes are indexed in a spatial grid once; mobile endpoints
(the user's proxy) are tracked separately and evaluated against positions at
transmission start.

Hot-path layout: node positions are fixed at t=0, so each static node's
in-range listener set is computed once (lazily, in grid-query order so
reception ordering — and therefore every downstream event sequence — is
bit-identical to querying the grid per transmission) and reused for every
``transmit``.  Carrier sense is answered from per-node busy bookkeeping
(an in-range-transmission counter plus latest end time per static node,
updated on transmission start/finish) instead of scanning all active
transmissions per query; the mobile proxy, whose position changes between
sense calls, is the one case that still scans the (short) active list.

Receptions are **batched per frame**: one :class:`BroadcastReception`
record carries the whole listener cohort in parallel arrays (receiver
refs, corrupt flags, corruption reasons) instead of one ``Reception``
object per listener, and a single end-of-airtime kernel event resolves
every receiver in a batch loop.  Per-radio reception state collapses to a
counter plus a pointer to the radio's unique still-clean reception (two
overlapping frames corrupt each other, so at most one in-flight reception
per radio is ever clean — see :class:`~repro.net.radio.Radio`); corruption
by overlap or by the receiver leaving a listening state flips the flag in
the record's arrays directly.  The object-per-reception ``Reception`` API
remains for unit tests and external callers but is off the simulation hot
path.
"""

from __future__ import annotations

from itertools import compress
from typing import Callable, Dict, List, Optional, Protocol, Tuple

from ..geometry.grid import SpatialGrid
from ..geometry.vec import Vec2
from ..sim.kernel import Simulator
from ..sim.trace import Tracer
from . import vectorized
from .energy import RadioState
from .packet import Frame
from .radio import Radio
from .vectorized import (
    CODE_IDLE,
    CODE_RX,
    MOBILE_SWEEP_THRESHOLD,
    STORE_BIND_THRESHOLD,
    VECTOR_COHORT_THRESHOLD,
)


class ChannelEndpoint(Protocol):
    """What the channel needs from anything that owns a radio."""

    node_id: int
    radio: Radio

    def position_at(self, time: float) -> Vec2:
        """Endpoint position at ``time`` (constant for sensor nodes)."""
        ...

    def deliver_frame(self, frame: Frame) -> None:
        """Hand a successfully received frame to the endpoint's MAC."""
        ...


class Reception:
    """One frame in flight at one receiver (object-per-reception API).

    The simulation hot path batches receptions per frame in
    :class:`BroadcastReception` instead; this class remains for unit tests
    and external callers driving :meth:`Radio.begin_reception` /
    :meth:`Radio.end_reception` directly.
    """

    __slots__ = ("frame", "receiver", "corrupted", "reason")

    def __init__(self, frame: Frame, receiver: ChannelEndpoint) -> None:
        self.frame = frame
        self.receiver = receiver
        self.corrupted = False
        self.reason: Optional[str] = None

    def corrupt(self, reason: str) -> None:
        """Mark the reception as failed (idempotent; first reason wins)."""
        if not self.corrupted:
            self.corrupted = True
            self.reason = reason


class BroadcastReception:
    """One frame on the air, with its entire listener cohort batched.

    Replaces the per-listener ``Reception`` objects on the hot path: the
    receiver set and per-receiver corruption state live in parallel arrays
    (``receivers[i]`` / ``corrupt[i]`` / ``reasons[i]``) carried by a
    single per-frame record, and ONE end-of-airtime kernel event resolves
    the whole cohort — radio RX end, energy accounting, collision and
    delivery outcomes — in a batch loop, so kernel events and allocations
    scale O(frames), not O(frames x listeners).
    """

    __slots__ = (
        "frame", "sender_id", "position", "end_time", "covered",
        "receivers", "corrupt", "reasons", "on_airtime_end",
    )

    def __init__(
        self,
        frame: Frame,
        sender_id: int,
        position: Vec2,
        end_time: float,
        covered: Tuple[int, ...] = (),
    ) -> None:
        self.frame = frame
        self.sender_id = sender_id
        self.position = position
        self.end_time = end_time
        #: static node ids (excluding the sender) whose busy counters this
        #: transmission incremented; decremented again on finish
        self.covered = covered
        #: endpoints that began receiving this frame, in reception order
        #: (static listeners in grid-query order, then mobiles)
        self.receivers: List[ChannelEndpoint] = []
        #: per-receiver corruption flag, parallel to ``receivers``
        self.corrupt: List[bool] = []
        #: per-receiver first corruption reason, parallel to ``receivers``
        self.reasons: List[Optional[str]] = []
        #: sender-side completion hook, run after the cohort resolves (the
        #: MAC's broadcast completion rides the batch event instead of
        #: scheduling its own kernel event at the same instant)
        self.on_airtime_end: Optional[Callable[[], None]] = None


class _VectorReception(BroadcastReception):
    """A :class:`BroadcastReception` whose cohort state is array-backed.

    Built by ``Channel._begin_vector`` when the static cohort is wide
    enough for the numpy path: ``corrupt`` is a preallocated bool array
    (static listeners first, mobiles after), ``reasons`` a sparse dict
    (only corrupt entries carry a reason — every write of a True flag
    writes its reason), and ``static_ids`` the listening static cohort's
    node ids aligned with ``corrupt[:len(static_ids)]``.  Radios corrupt
    entries through the exact same ``record.corrupt[i] = True`` /
    ``record.reasons[i] = ...`` statements as the list-backed record, so
    :meth:`Radio.set_state` and the object-API interop need no branching.
    """

    __slots__ = ("static_ids", "active_mask")

    def __init__(
        self,
        frame: Frame,
        sender_id: int,
        position: Vec2,
        end_time: float,
        covered: Tuple[int, ...],
        corrupt,
        static_ids,
    ) -> None:
        super().__init__(frame, sender_id, position, end_time, covered)
        self.corrupt = corrupt
        self.reasons = {}
        self.static_ids = static_ids
        #: dense bool mask (store width) of the listening static cohort,
        #: snapshotted at begin so the finish kernel can run dense updates
        self.active_mask = None


#: Mobile-endpoint count above which ``transmit`` switches its listener
#: sweep to the memo + Lipschitz-exclusion path.  Below this the direct
#: per-proxy evaluation is cheaper (measured on the pinned hot paths: the
#: memo costs ~5% at 16 proxies and saves ~17% at 64).
MOBILE_MEMO_THRESHOLD = 16


class Channel:
    """The shared medium connecting all registered endpoints."""

    def __init__(
        self,
        sim: Simulator,
        comm_range: float,
        bitrate_bps: float,
        tracer: Optional[Tracer] = None,
        preamble_s: float = 192e-6,
    ) -> None:
        """Args:
        sim: event kernel.
        comm_range: unit-disk radius ``Rc`` in metres.
        bitrate_bps: link bitrate (2e6 in the paper's evaluation).
        tracer: optional tracer; emits ``tx``, ``rx``, ``collision`` kinds.
        preamble_s: fixed PHY preamble/PLCP time per frame (802.11 long
            preamble at 1 Mb/s is 192 us).
        """
        if comm_range <= 0:
            raise ValueError(f"comm_range must be > 0, got {comm_range}")
        if bitrate_bps <= 0:
            raise ValueError(f"bitrate must be > 0, got {bitrate_bps}")
        self.sim = sim
        self.comm_range = comm_range
        self.bitrate_bps = bitrate_bps
        self.preamble_s = preamble_s
        self.tracer = tracer
        self._grid: SpatialGrid[int] = SpatialGrid(cell_size=comm_range)
        self._static: Dict[int, ChannelEndpoint] = {}
        self._mobile: Dict[int, ChannelEndpoint] = {}
        # Per-mobile position memo: node id -> (timestamp, x, y), the last
        # evaluated position.  Entries are pure-function results (a path's
        # position at t never changes), so they need no invalidation —
        # they are refreshed when a newer timestamp is asked for, and a
        # *stale* entry still serves the Lipschitz exclusion test in
        # ``transmit``: a proxy farther from the sender than comm range
        # plus (its max speed x entry age) provably cannot receive, so its
        # mobility model is not re-evaluated at all.
        self._mobile_pos: Dict[int, tuple] = {}
        #: per-mobile Lipschitz motion bound (m/s; inf disables exclusion)
        self._mobile_reach: Dict[int, float] = {}
        self._active: List[BroadcastReception] = []
        #: per static node: (listener endpoints, their ids, ids as a numpy
        #: index array or None), grid-query order
        self._neighbor_cache: Dict[
            int, Tuple[Tuple[ChannelEndpoint, ...], Tuple[int, ...], Optional[object]]
        ] = {}
        # Per static node (indexed by id): number of in-flight transmissions
        # from *other* senders covering it, and the latest end time among
        # every such transmission seen so far.  While the count is positive
        # the latest value equals the in-flight maximum (a finished
        # transmission can only hold the maximum once nothing outlasts it),
        # so carrier sense never scans the active list for static nodes.
        self._busy_count: List[int] = []
        self._busy_latest: List[float] = []
        #: descending sentinel ids assigned to in-flight transmissions whose
        #: mobile sender unregistered mid-airtime (see unregister_mobile)
        self._retired_sender_seq = 0
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_collided = 0
        # Optional numpy acceleration (see repro.net.vectorized): resolved
        # per channel at construction so REPRO_VECTORIZE applies per world.
        self._np = vectorized.numpy_or_none()
        # The store is NOT created at registration: bound radios serve
        # every scalar field read through a property into the arrays,
        # which slows the reference loops ~4x — a net loss unless the
        # dense kernels actually engage.  ``transmit`` migrates the world
        # onto a store the first time a static cohort reaches
        # STORE_BIND_THRESHOLD (one-way ratchet); narrow worlds never pay.
        self._vstore: Optional[vectorized.VectorStore] = None
        self._store_refused = False
        self._sweep = (
            vectorized.MobileSweep(self._np) if self._np is not None else None
        )
        # Static endpoints whose radios could not be store-bound (stub
        # radios in tests); any such endpoint disables the vector transmit
        # path — the store's arrays would not see its state.
        self._unbound_static = 0
        #: per static sender: dense bool mask (store width) of its covered
        #: listener ids — lets the begin kernel AND against ``listening``
        #: in one full-width op instead of fancy-indexing per transmit
        self._cover_masks: Dict[int, object] = {}
        #: fault-plane jam hook: when set (only while a radio-degradation
        #: window is open), consulted once per transmitted frame; a True
        #: return corrupts the whole cohort.  None outside fault windows,
        #: so the default path pays one attribute read per transmit.
        self.fault_jam: Optional[Callable[[Frame], bool]] = None

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_static(self, endpoint: ChannelEndpoint) -> None:
        """Register a fixed-position endpoint (sensor node)."""
        if endpoint.node_id in self._static or endpoint.node_id in self._mobile:
            raise ValueError(f"endpoint {endpoint.node_id} already registered")
        node_id = endpoint.node_id
        position = endpoint.position_at(0.0)
        self._static[node_id] = endpoint
        self._grid.insert(node_id, position)
        # New static nodes change neighbourhoods; caches rebuild lazily.
        self._neighbor_cache.clear()
        self._cover_masks.clear()
        if self._vstore is not None:
            # The world already ratcheted onto the store (a wide cohort
            # appeared earlier); late arrivals join it immediately.
            if type(endpoint.radio) is Radio:
                self._vstore.bind(endpoint.radio, node_id)
            else:
                # A stub or subclassed radio cannot be class-swapped onto
                # the store; its state would be invisible to the arrays.
                self._unbound_static += 1
        if node_id >= len(self._busy_count):
            grow = node_id + 1 - len(self._busy_count)
            self._busy_count.extend([0] * grow)
            self._busy_latest.extend([0.0] * grow)
        # Seed the new node's busy bookkeeping from transmissions already on
        # the air (registration mid-run is rare but supported): in-flight
        # records computed their covered sets before this node existed.
        r_sq_eps = self.comm_range * self.comm_range + 1e-9
        for tx in self._active:
            if tx.sender_id == node_id:
                continue
            if tx.position.distance_sq_to(position) <= r_sq_eps:
                tx.covered += (node_id,)
                self._busy_count[node_id] += 1
                if tx.end_time > self._busy_latest[node_id]:
                    self._busy_latest[node_id] = tx.end_time

    def register_mobile(self, endpoint: ChannelEndpoint) -> None:
        """Register a moving endpoint (the user's proxy)."""
        if endpoint.node_id in self._static or endpoint.node_id in self._mobile:
            raise ValueError(f"endpoint {endpoint.node_id} already registered")
        self._mobile[endpoint.node_id] = endpoint
        # A reused id must not inherit the previous endpoint's memo.
        self._mobile_pos.pop(endpoint.node_id, None)
        self._mobile_reach[endpoint.node_id] = float(
            getattr(endpoint, "max_speed_mps", float("inf"))
        )
        if len(self._mobile) == MOBILE_MEMO_THRESHOLD + 1:
            # The fleet just crossed the memo threshold: ``transmit`` and
            # ``_mobile_xy`` switch to the memo + Lipschitz path on their
            # next call, so start it from a clean slate — entries written
            # in an earlier above-threshold era must not straddle the
            # crossing (register/unregister churn around the boundary
            # otherwise flips paths between sites with stale entries).
            self._mobile_pos.clear()
        if self._sweep is not None:
            self._sweep.dirty = True

    def unregister_mobile(self, node_id: int) -> None:
        """Remove a mobile endpoint (its user's session was cancelled).

        Future transmissions no longer reach it; receptions already in
        flight hold a direct endpoint reference and resolve normally.
        Unknown ids are ignored so teardown is idempotent.

        A transmission the departing endpoint still has on the air keeps
        its record (the end-of-airtime event always fires and drains the
        per-node busy counters), but its ``sender_id`` is re-tagged to a
        unique sentinel: the id is only used to exclude the sender's own
        frame from its carrier sense, and a later ``register_mobile`` may
        legitimately reuse the id — without the re-tag the new endpoint
        would read the medium idle while the old frame is still in flight.
        """
        if self._mobile.pop(node_id, None) is None:
            return
        self._mobile_pos.pop(node_id, None)
        self._mobile_reach.pop(node_id, None)
        if len(self._mobile) == MOBILE_MEMO_THRESHOLD:
            # Dropped back to (or through) the threshold: the memo path is
            # off until the fleet grows again, and whatever it cached must
            # not survive the crossing (see register_mobile).
            self._mobile_pos.clear()
        if self._sweep is not None:
            self._sweep.dirty = True
        for tx in self._active:
            if tx.sender_id == node_id:
                self._retired_sender_seq -= 1
                tx.sender_id = self._retired_sender_seq

    def endpoint(self, node_id: int) -> ChannelEndpoint:
        """Look up a registered endpoint by id."""
        ep = self._static.get(node_id) or self._mobile.get(node_id)
        if ep is None:
            raise KeyError(f"no endpoint with id {node_id}")
        return ep

    # ------------------------------------------------------------------
    # Physical-layer queries
    # ------------------------------------------------------------------
    def airtime(self, frame: Frame) -> float:
        """Seconds the frame occupies the medium."""
        return self.preamble_s + (frame.wire_bytes() * 8.0) / self.bitrate_bps

    def in_range(self, a: ChannelEndpoint, b: ChannelEndpoint, time: float) -> bool:
        """Whether ``a`` and ``b`` are within communication range at ``time``."""
        return (
            a.position_at(time).distance_sq_to(b.position_at(time))
            <= self.comm_range * self.comm_range + 1e-9
        )

    def static_listeners(self, node_id: int) -> Tuple[ChannelEndpoint, ...]:
        """Static endpoints within range of static node ``node_id`` (cached).

        Excludes the node itself (a radio never receives its own frame);
        the others are ordered exactly as a fresh grid disk query would
        return them, so callers iterating the cache observe the same
        endpoint sequence (and schedule the same downstream events) as the
        uncached path.  Positions are fixed at t=0, so the tuple is computed
        once per node and reused for every transmission.
        """
        return self._static_cache(node_id)[0]

    def _static_cache(
        self, node_id: int
    ) -> Tuple[Tuple[ChannelEndpoint, ...], Tuple[int, ...], Optional[object]]:
        cached = self._neighbor_cache.get(node_id)
        if cached is None:
            position = self._static[node_id].position_at(0.0)
            ids = self._grid.query_disk(position, self.comm_range)
            static = self._static
            others = tuple(i for i in ids if i != node_id)
            np_mod = self._np
            cached = (
                tuple(static[i] for i in others),
                others,
                np_mod.array(others, dtype=np_mod.intp)
                if np_mod is not None
                else None,
            )
            self._neighbor_cache[node_id] = cached
        return cached

    def listeners_near(self, position: Vec2, time: float) -> List[ChannelEndpoint]:
        """All endpoints within range of ``position`` at ``time`` (any state)."""
        ids = self._grid.query_disk(position, self.comm_range)
        found = [self._static[i] for i in ids]
        r_sq = self.comm_range * self.comm_range
        for ep in self._mobile.values():
            if ep.position_at(time).distance_sq_to(position) <= r_sq + 1e-9:
                found.append(ep)
        return found

    def _mobile_xy(self, endpoint: ChannelEndpoint) -> Tuple[float, float]:
        """The endpoint's memoized position at the current instant.

        Pure-function memo keyed on ``(endpoint, now)``: repeated queries
        within one kernel timestamp (carrier sense, then the transmit
        sweep) evaluate the mobility model once.  Only the *registered*
        endpoint for an id touches the memo — a stale endpoint sensing
        after its id was reused (cancel + resubmit) must not alias the
        new proxy's entry.
        """
        now = self.sim.now
        node_id = endpoint.node_id
        if (
            len(self._mobile) <= MOBILE_MEMO_THRESHOLD
            or self._mobile.get(node_id) is not endpoint
        ):
            pos = endpoint.position_at(now)
            return pos.x, pos.y
        entry = self._mobile_pos.get(node_id)
        if entry is not None and entry[0] == now:
            return entry[1], entry[2]
        pos = endpoint.position_at(now)
        self._mobile_pos[node_id] = (now, pos.x, pos.y)
        return pos.x, pos.y

    def medium_busy(self, endpoint: ChannelEndpoint) -> bool:
        """Carrier sense: is any in-flight transmission within range?

        The endpoint's own transmission does not count (the MAC knows it is
        transmitting); a sleeping radio cannot sense and reads idle.
        """
        if endpoint.radio.is_sleeping:
            return False
        node_id = endpoint.node_id
        if self._static.get(node_id) is endpoint:
            return self._busy_count[node_id] > 0
        # Mobile proxy: position changes between sense calls, scan in flight.
        px, py = self._mobile_xy(endpoint)
        r_sq_eps = self.comm_range * self.comm_range + 1e-9
        for tx in self._active:
            if tx.sender_id == node_id:
                continue
            tpos = tx.position
            dx = tpos.x - px
            dy = tpos.y - py
            if dx * dx + dy * dy <= r_sq_eps:
                return True
        return False

    def busy_until(self, endpoint: ChannelEndpoint) -> Optional[float]:
        """Latest end time among in-range in-flight transmissions, if any."""
        node_id = endpoint.node_id
        if self._static.get(node_id) is endpoint:
            if self._busy_count[node_id] == 0:
                return None
            return self._busy_latest[node_id]
        px, py = self._mobile_xy(endpoint)
        r_sq_eps = self.comm_range * self.comm_range + 1e-9
        latest: Optional[float] = None
        for tx in self._active:
            if tx.sender_id == node_id:
                continue
            tpos = tx.position
            dx = tpos.x - px
            dy = tpos.y - py
            if dx * dx + dy * dy <= r_sq_eps:
                if latest is None or tx.end_time > latest:
                    latest = tx.end_time
        return latest

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(
        self,
        sender: ChannelEndpoint,
        frame: Frame,
        on_airtime_end: Optional[Callable[[], None]] = None,
    ) -> float:
        """Put ``frame`` on the air from ``sender``; returns its airtime.

        The caller (MAC) is responsible for carrier sense and for not
        already transmitting.  Reception outcomes resolve when the airtime
        elapses; ``on_airtime_end``, if given, runs at the very end of the
        same batch event — after every receiver resolved — sparing the
        caller a second kernel event at the identical instant.  (The two
        events were always seq-adjacent, so folding preserves the global
        event order exactly.)
        """
        now = self.sim.now
        duration = self.airtime(frame)
        sender_id = sender.node_id
        position = sender.position_at(now)
        sender.radio.set_state_tx_guarded()
        # Static listeners come from the per-node cache when the sender is a
        # registered static node (no per-transmit grid query or list build,
        # and the sender is already excluded); a mobile sender's footprint
        # is evaluated at its current position.
        id_arr = None
        static_sender = self._static.get(sender_id) is sender
        if static_sender:
            static_listeners, covered, id_arr = self._static_cache(sender_id)
        else:
            ids = self._grid.query_disk(position, self.comm_range)
            static = self._static
            static_listeners = tuple(static[i] for i in ids if i != sender_id)
            covered = tuple(i for i in ids if i != sender_id)
            if (
                len(self._mobile) > MOBILE_MEMO_THRESHOLD
                and self._mobile.get(sender_id) is sender
            ):
                # The sender's own position is fresh — share it with the
                # per-timestamp memo the listener sweep below reads.
                self._mobile_pos[sender_id] = (now, position.x, position.y)
        end_time = now + duration
        store = self._vstore
        if (
            store is None
            and self._np is not None
            and not self._store_refused
            and len(static_listeners) >= STORE_BIND_THRESHOLD
        ):
            # First cohort wide enough for the dense kernels to win:
            # migrate the whole static world onto the store now (bound
            # radios slow the scalar loops, so narrow worlds never bind).
            store = self._bind_store()
        if (
            store is not None
            and not self._unbound_static
            and len(static_listeners) >= VECTOR_COHORT_THRESHOLD
        ):
            # Wide cohort + every static radio store-bound: the whole
            # begin-reception pass runs as array operations (bit-identical
            # to the loops below — see repro.net.vectorized).
            if id_arr is None:
                np_mod = store.np
                id_arr = np_mod.array(covered, dtype=np_mod.intp)
            record = self._begin_vector(
                frame, sender_id, position, end_time, covered,
                static_listeners, id_arr, now, static_sender,
            )
        else:
            record = self._begin_reference(
                frame, sender_id, position, end_time, covered,
                static_listeners, now,
            )
        record.on_airtime_end = on_airtime_end
        jam = self.fault_jam
        if jam is not None and jam(frame):
            self._corrupt_cohort(record, "fault-degraded")
        self._active.append(record)
        busy_count = self._busy_count
        busy_latest = self._busy_latest
        for node_id in covered:
            busy_count[node_id] += 1
            if end_time > busy_latest[node_id]:
                busy_latest[node_id] = end_time
        self.frames_sent += 1
        tracer = self.tracer
        if tracer is not None:
            if tracer.wants("tx"):
                tracer.emit("tx", now, frame=frame.seq, frame_kind=frame.kind, src=frame.src)
            else:
                tracer.tick("tx")
        self.sim.schedule_fast(duration, self._finish_transmission, sender, record)
        return duration

    def _corrupt_cohort(self, record: BroadcastReception, reason: str) -> None:
        """Corrupt every still-clean reception of one in-flight frame.

        Works on both record layouts — list-backed ``corrupt``/``reasons``
        and the array-backed :class:`_VectorReception` (numpy flags, sparse
        reason dict) — through the same per-slot writes
        :meth:`Radio.set_state` uses, and releases each radio's clean-slot
        pointer (plain attribute or store-backed property) to preserve the
        at-most-one-clean-reception invariant the finish loops rely on.
        """
        corrupt = record.corrupt
        reasons = record.reasons
        for i, receiver in enumerate(record.receivers):
            if corrupt[i]:
                continue
            corrupt[i] = True
            reasons[i] = reason
            receiver.radio._rx_record = None

    def _bind_store(self) -> Optional["vectorized.VectorStore"]:
        """Migrate every static radio onto a fresh :class:`VectorStore`.

        Called by :meth:`transmit` the first time a static cohort reaches
        ``STORE_BIND_THRESHOLD``.  Binding mid-run is safe: ``bind``
        migrates each radio's live scalar state (including any in-flight
        reception bookkeeping) into the arrays, and records already on the
        air keep resolving through the class-swapped radios' properties.
        If any registered radio is a stub or subclass the store cannot
        represent, the channel permanently stays on the reference path.
        """
        for endpoint in self._static.values():
            if type(endpoint.radio) is not Radio:
                self._store_refused = True
                return None
        store = vectorized.VectorStore(self._np)
        for node_id, endpoint in self._static.items():
            store.bind(endpoint.radio, node_id)
        self._vstore = store
        return store

    def _begin_reference(
        self,
        frame: Frame,
        sender_id: int,
        position: Vec2,
        end_time: float,
        covered: Tuple[int, ...],
        static_listeners: Tuple[ChannelEndpoint, ...],
        now: float,
    ) -> BroadcastReception:
        """Begin the cohort's receptions with the pure-Python loops.

        This is the reference path (and the numpy-absent / small-cohort
        fallback): the exact pre-vectorization code, kept loop-for-loop —
        the accelerated path in ``_begin_vector`` must stay bit-identical
        to it.
        """
        record = BroadcastReception(frame, sender_id, position, end_time, covered)
        receivers = record.receivers
        corrupt = record.corrupt
        reasons = record.reasons
        # Reception begin is inlined in both loops below (overlap corruption
        # + IDLE->RX radio/energy transition) — one reception starts per
        # listening neighbour per transmission, the hottest inner loop in
        # the model.  No per-listener object is allocated: the cohort's
        # state is appended to the record's parallel arrays, and each radio
        # tracks only a count plus its single still-clean reception.
        rx_state = RadioState.RX
        idle_state = RadioState.IDLE
        for listener in static_listeners:
            radio = listener.radio
            if not radio.listening:
                continue
            n = radio.rx_count
            radio.rx_count = n + 1
            if n:
                # Overlap: the newcomer and whatever was still clean at
                # this radio are both corrupt (first reason wins).
                corrupt.append(True)
                reasons.append("overlap")
                prev = radio._rx_record
                if prev is not None:
                    prev.corrupt[radio._rx_index] = True
                    prev.reasons[radio._rx_index] = "overlap"
                    radio._rx_record = None
                if radio.active_receptions:  # legacy objects (tests only)
                    for other in radio.active_receptions:
                        other.corrupt("overlap")
            else:
                corrupt.append(False)
                reasons.append(None)
                radio._rx_record = record
                radio._rx_index = len(receivers)
            receivers.append(listener)
            if radio._state is idle_state:
                radio._state = rx_state
                energy = radio.energy
                elapsed = now - energy._state_since
                if elapsed > 0:
                    energy._joules += elapsed * energy._state_w
                    energy._idle_s += elapsed
                    energy._state_since = now
                energy._state = rx_state
                energy._state_w = energy.model.rx_w
        px, py = position.x, position.y
        mobiles = self._mobile
        if self._sweep is not None and len(mobiles) >= MOBILE_SWEEP_THRESHOLD:
            # Wide fleet + numpy: one batched segment evaluation positions
            # every proxy (bit-identical values, same joiner order as the
            # scalar branches below — the sweep is independent of the
            # radio store, so it accelerates the reference loops too).
            for listener in self._sweep_candidates(sender_id, px, py, now):
                listener.radio.begin_batch_reception(record, listener)
            return record
        r_sq_eps = self.comm_range * self.comm_range + 1e-9
        if len(mobiles) <= MOBILE_MEMO_THRESHOLD:
            # Small fleets: evaluating every proxy directly is cheaper
            # than the memo bookkeeping below (measured crossover around
            # 16 proxies on the pinned hot-path scenarios).
            for listener in mobiles.values():
                if listener.node_id == sender_id:
                    continue
                lpos = listener.position_at(now)
                dx = lpos.x - px
                dy = lpos.y - py
                if dx * dx + dy * dy > r_sq_eps:
                    continue
                radio = listener.radio
                if not radio.listening:
                    continue
                radio.begin_batch_reception(record, listener)
        else:
            mobile_pos = self._mobile_pos
            mobile_reach = self._mobile_reach
            for listener in mobiles.values():
                nid = listener.node_id
                if nid == sender_id:
                    continue
                # Positions are memoized per (proxy, timestamp); a stale
                # memo plus the proxy's speed bound can prove it is still
                # out of range, in which case the mobility model is not
                # re-evaluated at all.  At 64 proxies this takes ~17% off
                # the whole-run wall; below the threshold the bookkeeping
                # outweighs the saved evaluations.
                entry = mobile_pos.get(nid)
                if entry is not None and entry[0] == now:
                    lx = entry[1]
                    ly = entry[2]
                else:
                    if entry is not None:
                        dx = entry[1] - px
                        dy = entry[2] - py
                        # 1e-6 m of slack keeps the exclusion strictly
                        # more conservative than the exact r_sq_eps test.
                        reach = (
                            self.comm_range
                            + mobile_reach[nid] * (now - entry[0])
                            + 1e-6
                        )
                        if dx * dx + dy * dy > reach * reach:
                            continue
                    lpos = listener.position_at(now)
                    lx = lpos.x
                    ly = lpos.y
                    mobile_pos[nid] = (now, lx, ly)
                dx = lx - px
                dy = ly - py
                if dx * dx + dy * dy > r_sq_eps:
                    continue
                radio = listener.radio
                if not radio.listening:
                    continue
                # The plain batch-begin method — no fourth inlined copy of
                # the corruption/energy logic to keep in sync.
                radio.begin_batch_reception(record, listener)
        return record

    def _sweep_candidates(
        self, sender_id: int, px: float, py: float, now: float
    ) -> List[ChannelEndpoint]:
        """In-range listening mobiles at ``now`` via the batched sweep.

        One elementwise segment evaluation positions the whole fleet
        (bit-identical to per-proxy ``position_at`` — see
        :class:`~repro.net.vectorized.MobileSweep`), then the range mask
        and listening filter reproduce the scalar branches' predicate
        order.  Slot order is fleet registration order, so the joiner
        sequence matches the dict-iteration order of the scalar paths.
        """
        sweep = self._sweep
        if sweep.dirty:
            sweep.rebuild(self._mobile)
        xs, ys = sweep.positions_at(now)
        dxs = xs - px
        dys = ys - py
        mask = dxs * dxs + dys * dys <= (
            self.comm_range * self.comm_range + 1e-9
        )
        sender_slot = sweep.slot_of.get(sender_id)
        if sender_slot is not None:
            mask[sender_slot] = False
        if not mask.any():
            return []
        eps = sweep.endpoints
        return [
            eps[k]
            for k in sweep.np.nonzero(mask)[0].tolist()
            if eps[k].radio.listening
        ]

    def _mobile_candidates(
        self, sender_id: int, px: float, py: float, now: float
    ) -> List[ChannelEndpoint]:
        """In-range listening mobiles at ``now``, fleet order (scalar).

        The same selection the two mobile branches of ``_begin_reference``
        make — direct evaluation below the memo threshold, memo + Lipschitz
        exclusion above it, maintaining the shared memo identically — but
        returning the joiner list instead of beginning receptions, so the
        vector path can preallocate the record's arrays at cohort size.
        """
        r_sq_eps = self.comm_range * self.comm_range + 1e-9
        mobiles = self._mobile
        joiners: List[ChannelEndpoint] = []
        if len(mobiles) <= MOBILE_MEMO_THRESHOLD:
            for listener in mobiles.values():
                if listener.node_id == sender_id:
                    continue
                lpos = listener.position_at(now)
                dx = lpos.x - px
                dy = lpos.y - py
                if dx * dx + dy * dy > r_sq_eps:
                    continue
                if not listener.radio.listening:
                    continue
                joiners.append(listener)
            return joiners
        mobile_pos = self._mobile_pos
        mobile_reach = self._mobile_reach
        for listener in mobiles.values():
            nid = listener.node_id
            if nid == sender_id:
                continue
            entry = mobile_pos.get(nid)
            if entry is not None and entry[0] == now:
                lx = entry[1]
                ly = entry[2]
            else:
                if entry is not None:
                    dx = entry[1] - px
                    dy = entry[2] - py
                    reach = (
                        self.comm_range
                        + mobile_reach[nid] * (now - entry[0])
                        + 1e-6
                    )
                    if dx * dx + dy * dy > reach * reach:
                        continue
                lpos = listener.position_at(now)
                lx = lpos.x
                ly = lpos.y
                mobile_pos[nid] = (now, lx, ly)
            dx = lx - px
            dy = ly - py
            if dx * dx + dy * dy > r_sq_eps:
                continue
            if not listener.radio.listening:
                continue
            joiners.append(listener)
        return joiners

    def _begin_vector(
        self,
        frame: Frame,
        sender_id: int,
        position: Vec2,
        end_time: float,
        covered: Tuple[int, ...],
        static_listeners: Tuple[ChannelEndpoint, ...],
        id_arr,
        now: float,
        static_sender: bool,
    ) -> _VectorReception:
        """Begin the cohort's receptions as array operations on the store.

        Same semantics as ``_begin_reference``, op for op — the per-node
        counters/records/energy fields just live in the
        :class:`~repro.net.vectorized.VectorStore` arrays.  The kernels run
        **dense**: full store width, masked by the sender's cover mask AND
        the listening flags, so the op count is independent of cohort size
        (non-members contribute exact zeros — adding ``0.0`` to a float64
        accumulator and ``where=``-masked writes leave them bit-identical).
        Receiver order is preserved: static listeners in grid-query order
        first, mobiles in registration order after.
        """
        store = self._vstore
        np_mod = store.np
        px = position.x
        py = position.y
        # Mobile candidates are computed first (pure reads: batched path
        # evaluation, range mask, listening flags) so the record's parallel
        # arrays can be allocated at their final cohort size.
        mobiles = self._mobile
        mobile_joiners: List[ChannelEndpoint] = []
        if mobiles:
            if len(mobiles) >= MOBILE_SWEEP_THRESHOLD:
                mobile_joiners = self._sweep_candidates(sender_id, px, py, now)
            else:
                # Small fleets: one batched segment evaluation costs more
                # than a handful of direct position_at calls.
                mobile_joiners = self._mobile_candidates(sender_id, px, py, now)
        listening = store.listening
        cover = self._cover_masks.get(sender_id) if static_sender else None
        if cover is None or cover.shape[0] != listening.shape[0]:
            cover = np_mod.zeros(listening.shape[0], dtype=bool)
            cover[id_arr] = True
            if static_sender:
                self._cover_masks[sender_id] = cover
        active = np_mod.logical_and(cover, listening, out=store.buf_active)
        lmask = listening[id_arr]
        receivers = list(compress(static_listeners, lmask.tolist()))
        n_static = len(receivers)
        lids = id_arr if n_static == len(static_listeners) else id_arr[lmask]
        corrupt = np_mod.zeros(n_static + len(mobile_joiners), dtype=bool)
        record = _VectorReception(
            frame, sender_id, position, end_time, covered, corrupt, lids
        )
        record.receivers = receivers
        record.active_mask = active.copy()
        if n_static:
            rx_count = store.rx_count
            rx_record = store.rx_record
            rx_index = store.rx_index
            # Probe for overlaps BEFORE bumping the counters (and before
            # the clean-slot scatter would overwrite the records the
            # overlap branch must corrupt).
            overlap = bool(
                np_mod.logical_and(active, rx_count, out=store.buf_b2).any()
            )
            rx_count += active
            if not overlap:
                rx_record[lids] = record
                rx_index[lids] = store.arange_buf[:n_static]
            else:
                # Overlap: the newcomer and whatever was still clean at
                # each busy radio are both corrupt (first reason wins).
                cnt = rx_count[lids]
                new_mask = cnt == 1
                overlapped = np_mod.nonzero(~new_mask)[0]
                corrupt[overlapped] = True
                reasons = record.reasons
                lids_list = lids.tolist()
                for k in overlapped.tolist():
                    reasons[k] = "overlap"
                    nid = lids_list[k]
                    prev = rx_record[nid]
                    if prev is not None:
                        pi = rx_index[nid]
                        prev.corrupt[pi] = True
                        prev.reasons[pi] = "overlap"
                        rx_record[nid] = None
                    legacy = receivers[k].radio.active_receptions
                    if legacy:  # legacy objects (tests only)
                        for other in legacy:
                            other.corrupt("overlap")
                clean_ids = lids[new_mask]
                rx_record[clean_ids] = record
                rx_index[clean_ids] = np_mod.nonzero(new_mask)[0]
            # IDLE -> RX for the whole cohort at once, dense (energy
            # integration identical to the scalar inline: close the open
            # idle interval, retag the state, switch the draw; members not
            # transitioning accumulate exact 0.0).
            state = store.state
            idle = np_mod.logical_and(
                active,
                np_mod.equal(state, CODE_IDLE, out=store.buf_b2),
                out=store.buf_b2,
            )
            el = np_mod.subtract(now, store.state_since, out=store.buf_f1)
            el *= idle
            store.joules += np_mod.multiply(el, store.idle_w, out=store.buf_f2)
            store.idle_s += el
            np_mod.copyto(store.state_since, now, where=idle)
            np_mod.copyto(state, CODE_RX, where=idle)
            np_mod.copyto(store.estate, CODE_RX, where=idle)
            np_mod.copyto(store.state_w, store.rx_w, where=idle)
        if mobile_joiners:
            # Mobile tail: plain-object radios, scalar begin — same body
            # as Radio.begin_batch_reception but writing the preallocated
            # slots instead of appending.
            reasons = record.reasons
            rx_state = RadioState.RX
            idle_state = RadioState.IDLE
            idx = n_static
            for listener in mobile_joiners:
                radio = listener.radio
                n = radio.rx_count
                radio.rx_count = n + 1
                if n:
                    corrupt[idx] = True
                    reasons[idx] = "overlap"
                    prev = radio._rx_record
                    if prev is not None:
                        prev.corrupt[radio._rx_index] = True
                        prev.reasons[radio._rx_index] = "overlap"
                        radio._rx_record = None
                    if radio.active_receptions:
                        for other in radio.active_receptions:
                            other.corrupt("overlap")
                else:
                    radio._rx_record = record
                    radio._rx_index = idx
                receivers.append(listener)
                if radio._state is idle_state:
                    radio.set_state(rx_state)
                idx += 1
        return record

    def _finish_transmission(
        self, sender: ChannelEndpoint, record: BroadcastReception
    ) -> None:
        """End-of-airtime batch event: resolve every receiver of one frame.

        One kernel event per frame (scheduled by :meth:`transmit`) walks
        the record's parallel arrays — reception end, RX->IDLE radio and
        energy transitions, collision/delivery outcome and upward dispatch
        all happen in this loop, in the same receiver order the per-object
        path used, so downstream event sequences are unchanged.
        """
        self._active.remove(record)
        busy_count = self._busy_count
        for node_id in record.covered:
            busy_count[node_id] -= 1
        sender.radio.end_transmission()
        now = self.sim.now
        tracer = self.tracer
        frame = record.frame
        rx_state = RadioState.RX
        idle_state = RadioState.IDLE
        corrupt = record.corrupt
        reasons = record.reasons
        emit_collision = tracer is not None and tracer.wants("collision")
        emit_rx = tracer is not None and tracer.wants("rx")
        if record.__class__ is _VectorReception and not (emit_collision or emit_rx):
            # Array-backed cohort, no per-receiver trace consumers: resolve
            # with array operations.  (A watched "rx"/"collision" kind falls
            # through to the scalar loop so per-receiver emission order is
            # preserved exactly.)
            self._finish_vector(record, now, tracer)
            return
        collided = 0
        delivered = 0
        for i, receiver in enumerate(record.receivers):
            radio = receiver.radio
            n = radio.rx_count - 1
            radio.rx_count = n
            if not n and radio._state is rx_state:
                radio._state = idle_state
                energy = radio.energy
                elapsed = now - energy._state_since
                if elapsed > 0:
                    energy._joules += elapsed * energy._state_w
                    energy._rx_s += elapsed
                    energy._state_since = now
                energy._state = idle_state
                energy._state_w = energy.model.idle_w
            if corrupt[i]:
                collided += 1
                if emit_collision:
                    tracer.emit(
                        "collision",
                        now,
                        frame=frame.seq,
                        frame_kind=frame.kind,
                        at=receiver.node_id,
                        reason=reasons[i],
                    )
                continue
            # A clean reception reaching its end is, by the overlap rules,
            # the unique clean one at its radio — release the radio's slot.
            radio._rx_record = None
            delivered += 1
            if emit_rx:
                tracer.emit(
                    "rx",
                    now,
                    frame=frame.seq,
                    frame_kind=frame.kind,
                    at=receiver.node_id,
                )
            receiver.deliver_frame(frame)
        self.frames_collided += collided
        self.frames_delivered += delivered
        if tracer is not None:
            # Batch the unwatched tick counting: one counter bump per frame
            # instead of one per receiver.
            if collided and not emit_collision:
                tracer.tick_many("collision", collided)
            if delivered and not emit_rx:
                tracer.tick_many("rx", delivered)
        callback = record.on_airtime_end
        if callback is not None:
            callback()

    def _finish_vector(
        self, record: _VectorReception, now: float, tracer: Optional[Tracer]
    ) -> None:
        """Array-path twin of the scalar resolve loop above.

        Static receivers resolve as fancy-indexed array updates (counter
        decrement, RX->IDLE energy close-out, clean-slot release), then
        deliveries dispatch in receiver order; the mobile tail runs the
        scalar per-receiver block.  Before each delivery the corrupt flag
        is re-read — a delivery side effect earlier in the batch could in
        principle corrupt a later receiver, and the scalar loop reads the
        flag at each receiver's turn.
        """
        store = self._vstore
        np_mod = store.np
        lids = record.static_ids
        receivers = record.receivers
        corrupt = record.corrupt
        frame = record.frame
        n_static = len(lids)
        delivered = 0
        if n_static:
            am = record.active_mask
            rx_count = store.rx_count
            if am.shape[0] != rx_count.shape[0]:
                # The store grew mid-airtime (registration mid-run): pad
                # the begin-time snapshot out to the new width.
                grown = np_mod.zeros(rx_count.shape[0], dtype=bool)
                grown[: am.shape[0]] = am
                am = grown
            rx_count -= am
            # Cohort members whose last in-flight reception just ended and
            # that are still in RX return to IDLE, dense (the energy
            # close-out mirrors the scalar block below; non-members
            # accumulate exact 0.0).
            state = store.state
            ended = np_mod.logical_and(
                np_mod.equal(rx_count, 0, out=store.buf_b2), am, out=store.buf_b2
            )
            ended = np_mod.logical_and(
                ended, np_mod.equal(state, CODE_RX, out=store.buf_b3), out=store.buf_b2
            )
            el = np_mod.subtract(now, store.state_since, out=store.buf_f1)
            el *= ended
            store.joules += np_mod.multiply(el, store.rx_w, out=store.buf_f2)
            store.rx_s += el
            np_mod.copyto(store.state_since, now, where=ended)
            np_mod.copyto(state, CODE_IDLE, where=ended)
            np_mod.copyto(store.estate, CODE_IDLE, where=ended)
            np_mod.copyto(store.state_w, store.idle_w, where=ended)
            rx_record = store.rx_record
            if not corrupt[:n_static].any():
                # Wholly clean static cohort: release every slot in one
                # scatter, then deliver in receiver order.
                rx_record[lids] = None
                delivered = n_static
                for k in range(n_static):
                    receivers[k].deliver_frame(frame)
            else:
                lids_list = lids.tolist()
                for k in range(n_static):
                    # Re-read the flag at each receiver's turn, like the
                    # scalar loop (a delivery side effect earlier in the
                    # batch could in principle corrupt a later receiver).
                    if corrupt[k]:
                        continue
                    # A clean reception reaching its end is, by the overlap
                    # rules, the unique clean one at its radio — release
                    # the radio's slot.
                    rx_record[lids_list[k]] = None
                    delivered += 1
                    receivers[k].deliver_frame(frame)
        # Mobile tail: plain-object radios, the scalar per-receiver block.
        rx_state = RadioState.RX
        idle_state = RadioState.IDLE
        for i in range(n_static, len(receivers)):
            receiver = receivers[i]
            radio = receiver.radio
            n = radio.rx_count - 1
            radio.rx_count = n
            if not n and radio._state is rx_state:
                radio._state = idle_state
                energy = radio.energy
                elapsed = now - energy._state_since
                if elapsed > 0:
                    energy._joules += elapsed * energy._state_w
                    energy._rx_s += elapsed
                    energy._state_since = now
                energy._state = idle_state
                energy._state_w = energy.model.idle_w
            if corrupt[i]:
                continue
            radio._rx_record = None
            delivered += 1
            receiver.deliver_frame(frame)
        collided = len(receivers) - delivered
        self.frames_collided += collided
        self.frames_delivered += delivered
        if tracer is not None:
            if collided:
                tracer.tick_many("collision", collided)
            if delivered:
                tracer.tick_many("rx", delivered)
        callback = record.on_airtime_end
        if callback is not None:
            callback()
