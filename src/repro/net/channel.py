"""Wireless channel: unit-disk propagation, airtime, receiver-side collisions.

The channel is the broker between transmitting radios and listening ones:

* **Propagation** is the unit-disk model the paper's ns-2 setup approximates
  (communication range ``Rc = 105 m`` in the evaluation).  Propagation delay
  is negligible at these ranges and is folded into airtime.
* **Airtime** is ``preamble + 8 * wire_bytes / bitrate`` (2 Mb/s in the
  paper's simulations).
* **Collisions** are detected per receiver: two frames overlapping in time
  at a listening radio corrupt each other.  There is no capture effect,
  matching the default ns-2 two-state model the paper used.
* **Carrier sense**: a node senses the medium busy when any in-range
  transmission is in flight.  Senders that honour carrier sense therefore
  collide mainly through hidden terminals and same-slot backoff expiry —
  the loss mechanism behind MQ-GP's fidelity variance in Figure 5.

Static sensor nodes are indexed in a spatial grid once; mobile endpoints
(the user's proxy) are tracked separately and evaluated against positions at
transmission start.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol

from ..geometry.grid import SpatialGrid
from ..geometry.vec import Vec2
from ..sim.kernel import Simulator
from ..sim.trace import Tracer
from .packet import Frame
from .radio import Radio


class ChannelEndpoint(Protocol):
    """What the channel needs from anything that owns a radio."""

    node_id: int
    radio: Radio

    def position_at(self, time: float) -> Vec2:
        """Endpoint position at ``time`` (constant for sensor nodes)."""
        ...

    def deliver_frame(self, frame: Frame) -> None:
        """Hand a successfully received frame to the endpoint's MAC."""
        ...


class Reception:
    """One frame in flight at one receiver."""

    __slots__ = ("frame", "receiver", "corrupted", "reason")

    def __init__(self, frame: Frame, receiver: ChannelEndpoint) -> None:
        self.frame = frame
        self.receiver = receiver
        self.corrupted = False
        self.reason: Optional[str] = None

    def corrupt(self, reason: str) -> None:
        """Mark the reception as failed (idempotent; first reason wins)."""
        if not self.corrupted:
            self.corrupted = True
            self.reason = reason


class _ActiveTransmission:
    """Bookkeeping for one transmission while it is on the air."""

    __slots__ = ("frame", "sender_id", "position", "end_time", "receptions")

    def __init__(
        self,
        frame: Frame,
        sender_id: int,
        position: Vec2,
        end_time: float,
        receptions: List[Reception],
    ) -> None:
        self.frame = frame
        self.sender_id = sender_id
        self.position = position
        self.end_time = end_time
        self.receptions = receptions


class Channel:
    """The shared medium connecting all registered endpoints."""

    def __init__(
        self,
        sim: Simulator,
        comm_range: float,
        bitrate_bps: float,
        tracer: Optional[Tracer] = None,
        preamble_s: float = 192e-6,
    ) -> None:
        """Args:
        sim: event kernel.
        comm_range: unit-disk radius ``Rc`` in metres.
        bitrate_bps: link bitrate (2e6 in the paper's evaluation).
        tracer: optional tracer; emits ``tx``, ``rx``, ``collision`` kinds.
        preamble_s: fixed PHY preamble/PLCP time per frame (802.11 long
            preamble at 1 Mb/s is 192 us).
        """
        if comm_range <= 0:
            raise ValueError(f"comm_range must be > 0, got {comm_range}")
        if bitrate_bps <= 0:
            raise ValueError(f"bitrate must be > 0, got {bitrate_bps}")
        self.sim = sim
        self.comm_range = comm_range
        self.bitrate_bps = bitrate_bps
        self.preamble_s = preamble_s
        self.tracer = tracer
        self._grid: SpatialGrid[int] = SpatialGrid(cell_size=comm_range)
        self._static: Dict[int, ChannelEndpoint] = {}
        self._mobile: Dict[int, ChannelEndpoint] = {}
        self._active: List[_ActiveTransmission] = []
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_collided = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_static(self, endpoint: ChannelEndpoint) -> None:
        """Register a fixed-position endpoint (sensor node)."""
        if endpoint.node_id in self._static or endpoint.node_id in self._mobile:
            raise ValueError(f"endpoint {endpoint.node_id} already registered")
        self._static[endpoint.node_id] = endpoint
        self._grid.insert(endpoint.node_id, endpoint.position_at(0.0))

    def register_mobile(self, endpoint: ChannelEndpoint) -> None:
        """Register a moving endpoint (the user's proxy)."""
        if endpoint.node_id in self._static or endpoint.node_id in self._mobile:
            raise ValueError(f"endpoint {endpoint.node_id} already registered")
        self._mobile[endpoint.node_id] = endpoint

    def endpoint(self, node_id: int) -> ChannelEndpoint:
        """Look up a registered endpoint by id."""
        ep = self._static.get(node_id) or self._mobile.get(node_id)
        if ep is None:
            raise KeyError(f"no endpoint with id {node_id}")
        return ep

    # ------------------------------------------------------------------
    # Physical-layer queries
    # ------------------------------------------------------------------
    def airtime(self, frame: Frame) -> float:
        """Seconds the frame occupies the medium."""
        return self.preamble_s + (frame.wire_bytes() * 8.0) / self.bitrate_bps

    def in_range(self, a: ChannelEndpoint, b: ChannelEndpoint, time: float) -> bool:
        """Whether ``a`` and ``b`` are within communication range at ``time``."""
        return (
            a.position_at(time).distance_sq_to(b.position_at(time))
            <= self.comm_range * self.comm_range + 1e-9
        )

    def listeners_near(self, position: Vec2, time: float) -> List[ChannelEndpoint]:
        """All endpoints within range of ``position`` at ``time`` (any state)."""
        ids = self._grid.query_disk(position, self.comm_range)
        found = [self._static[i] for i in ids]
        r_sq = self.comm_range * self.comm_range
        for ep in self._mobile.values():
            if ep.position_at(time).distance_sq_to(position) <= r_sq + 1e-9:
                found.append(ep)
        return found

    def medium_busy(self, endpoint: ChannelEndpoint) -> bool:
        """Carrier sense: is any in-flight transmission within range?

        The endpoint's own transmission does not count (the MAC knows it is
        transmitting); a sleeping radio cannot sense and reads idle.
        """
        if endpoint.radio.is_sleeping:
            return False
        now = self.sim.now
        pos = endpoint.position_at(now)
        r_sq = self.comm_range * self.comm_range
        for tx in self._active:
            if tx.sender_id == endpoint.node_id:
                continue
            if tx.position.distance_sq_to(pos) <= r_sq + 1e-9:
                return True
        return False

    def busy_until(self, endpoint: ChannelEndpoint) -> Optional[float]:
        """Latest end time among in-range in-flight transmissions, if any."""
        now = self.sim.now
        pos = endpoint.position_at(now)
        r_sq = self.comm_range * self.comm_range
        latest: Optional[float] = None
        for tx in self._active:
            if tx.sender_id == endpoint.node_id:
                continue
            if tx.position.distance_sq_to(pos) <= r_sq + 1e-9:
                if latest is None or tx.end_time > latest:
                    latest = tx.end_time
        return latest

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(self, sender: ChannelEndpoint, frame: Frame) -> float:
        """Put ``frame`` on the air from ``sender``; returns its airtime.

        The caller (MAC) is responsible for carrier sense and for not
        already transmitting.  Reception outcomes resolve when the airtime
        elapses.
        """
        now = self.sim.now
        duration = self.airtime(frame)
        position = sender.position_at(now)
        sender.radio.set_state_tx_guarded()
        receptions: List[Reception] = []
        for listener in self.listeners_near(position, now):
            if listener.node_id == sender.node_id:
                continue
            if not listener.radio.is_listening:
                continue
            reception = Reception(frame, listener)
            listener.radio.begin_reception(reception)
            receptions.append(reception)
        record = _ActiveTransmission(frame, sender.node_id, position, now + duration, receptions)
        self._active.append(record)
        self.frames_sent += 1
        if self.tracer is not None:
            self.tracer.emit("tx", now, frame=frame.seq, frame_kind=frame.kind, src=frame.src)
        self.sim.schedule(duration, self._finish_transmission, sender, record)
        return duration

    def _finish_transmission(
        self, sender: ChannelEndpoint, record: _ActiveTransmission
    ) -> None:
        self._active.remove(record)
        sender.radio.end_transmission()
        now = self.sim.now
        for reception in record.receptions:
            reception.receiver.radio.end_reception(reception)
            if reception.corrupted:
                self.frames_collided += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        "collision",
                        now,
                        frame=record.frame.seq,
                        frame_kind=record.frame.kind,
                        at=reception.receiver.node_id,
                        reason=reception.reason,
                    )
                continue
            self.frames_delivered += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "rx",
                    now,
                    frame=record.frame.seq,
                    frame_kind=record.frame.kind,
                    at=reception.receiver.node_id,
                )
            reception.receiver.deliver_frame(record.frame)
