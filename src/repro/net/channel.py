"""Wireless channel: unit-disk propagation, airtime, receiver-side collisions.

The channel is the broker between transmitting radios and listening ones:

* **Propagation** is the unit-disk model the paper's ns-2 setup approximates
  (communication range ``Rc = 105 m`` in the evaluation).  Propagation delay
  is negligible at these ranges and is folded into airtime.
* **Airtime** is ``preamble + 8 * wire_bytes / bitrate`` (2 Mb/s in the
  paper's simulations).
* **Collisions** are detected per receiver: two frames overlapping in time
  at a listening radio corrupt each other.  There is no capture effect,
  matching the default ns-2 two-state model the paper used.
* **Carrier sense**: a node senses the medium busy when any in-range
  transmission is in flight.  Senders that honour carrier sense therefore
  collide mainly through hidden terminals and same-slot backoff expiry —
  the loss mechanism behind MQ-GP's fidelity variance in Figure 5.

Static sensor nodes are indexed in a spatial grid once; mobile endpoints
(the user's proxy) are tracked separately and evaluated against positions at
transmission start.

Hot-path layout: node positions are fixed at t=0, so each static node's
in-range listener set is computed once (lazily, in grid-query order so
reception ordering — and therefore every downstream event sequence — is
bit-identical to querying the grid per transmission) and reused for every
``transmit``.  Carrier sense is answered from per-node busy bookkeeping
(an in-range-transmission counter plus latest end time per static node,
updated on transmission start/finish) instead of scanning all active
transmissions per query; the mobile proxy, whose position changes between
sense calls, is the one case that still scans the (short) active list.

Receptions are **batched per frame**: one :class:`BroadcastReception`
record carries the whole listener cohort in parallel arrays (receiver
refs, corrupt flags, corruption reasons) instead of one ``Reception``
object per listener, and a single end-of-airtime kernel event resolves
every receiver in a batch loop.  Per-radio reception state collapses to a
counter plus a pointer to the radio's unique still-clean reception (two
overlapping frames corrupt each other, so at most one in-flight reception
per radio is ever clean — see :class:`~repro.net.radio.Radio`); corruption
by overlap or by the receiver leaving a listening state flips the flag in
the record's arrays directly.  The object-per-reception ``Reception`` API
remains for unit tests and external callers but is off the simulation hot
path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol, Tuple

from ..geometry.grid import SpatialGrid
from ..geometry.vec import Vec2
from ..sim.kernel import Simulator
from ..sim.trace import Tracer
from .energy import RadioState
from .packet import Frame
from .radio import Radio


class ChannelEndpoint(Protocol):
    """What the channel needs from anything that owns a radio."""

    node_id: int
    radio: Radio

    def position_at(self, time: float) -> Vec2:
        """Endpoint position at ``time`` (constant for sensor nodes)."""
        ...

    def deliver_frame(self, frame: Frame) -> None:
        """Hand a successfully received frame to the endpoint's MAC."""
        ...


class Reception:
    """One frame in flight at one receiver (object-per-reception API).

    The simulation hot path batches receptions per frame in
    :class:`BroadcastReception` instead; this class remains for unit tests
    and external callers driving :meth:`Radio.begin_reception` /
    :meth:`Radio.end_reception` directly.
    """

    __slots__ = ("frame", "receiver", "corrupted", "reason")

    def __init__(self, frame: Frame, receiver: ChannelEndpoint) -> None:
        self.frame = frame
        self.receiver = receiver
        self.corrupted = False
        self.reason: Optional[str] = None

    def corrupt(self, reason: str) -> None:
        """Mark the reception as failed (idempotent; first reason wins)."""
        if not self.corrupted:
            self.corrupted = True
            self.reason = reason


class BroadcastReception:
    """One frame on the air, with its entire listener cohort batched.

    Replaces the per-listener ``Reception`` objects on the hot path: the
    receiver set and per-receiver corruption state live in parallel arrays
    (``receivers[i]`` / ``corrupt[i]`` / ``reasons[i]``) carried by a
    single per-frame record, and ONE end-of-airtime kernel event resolves
    the whole cohort — radio RX end, energy accounting, collision and
    delivery outcomes — in a batch loop, so kernel events and allocations
    scale O(frames), not O(frames x listeners).
    """

    __slots__ = (
        "frame", "sender_id", "position", "end_time", "covered",
        "receivers", "corrupt", "reasons", "on_airtime_end",
    )

    def __init__(
        self,
        frame: Frame,
        sender_id: int,
        position: Vec2,
        end_time: float,
        covered: Tuple[int, ...] = (),
    ) -> None:
        self.frame = frame
        self.sender_id = sender_id
        self.position = position
        self.end_time = end_time
        #: static node ids (excluding the sender) whose busy counters this
        #: transmission incremented; decremented again on finish
        self.covered = covered
        #: endpoints that began receiving this frame, in reception order
        #: (static listeners in grid-query order, then mobiles)
        self.receivers: List[ChannelEndpoint] = []
        #: per-receiver corruption flag, parallel to ``receivers``
        self.corrupt: List[bool] = []
        #: per-receiver first corruption reason, parallel to ``receivers``
        self.reasons: List[Optional[str]] = []
        #: sender-side completion hook, run after the cohort resolves (the
        #: MAC's broadcast completion rides the batch event instead of
        #: scheduling its own kernel event at the same instant)
        self.on_airtime_end: Optional[Callable[[], None]] = None


#: Mobile-endpoint count above which ``transmit`` switches its listener
#: sweep to the memo + Lipschitz-exclusion path.  Below this the direct
#: per-proxy evaluation is cheaper (measured on the pinned hot paths: the
#: memo costs ~5% at 16 proxies and saves ~17% at 64).
MOBILE_MEMO_THRESHOLD = 16


class Channel:
    """The shared medium connecting all registered endpoints."""

    def __init__(
        self,
        sim: Simulator,
        comm_range: float,
        bitrate_bps: float,
        tracer: Optional[Tracer] = None,
        preamble_s: float = 192e-6,
    ) -> None:
        """Args:
        sim: event kernel.
        comm_range: unit-disk radius ``Rc`` in metres.
        bitrate_bps: link bitrate (2e6 in the paper's evaluation).
        tracer: optional tracer; emits ``tx``, ``rx``, ``collision`` kinds.
        preamble_s: fixed PHY preamble/PLCP time per frame (802.11 long
            preamble at 1 Mb/s is 192 us).
        """
        if comm_range <= 0:
            raise ValueError(f"comm_range must be > 0, got {comm_range}")
        if bitrate_bps <= 0:
            raise ValueError(f"bitrate must be > 0, got {bitrate_bps}")
        self.sim = sim
        self.comm_range = comm_range
        self.bitrate_bps = bitrate_bps
        self.preamble_s = preamble_s
        self.tracer = tracer
        self._grid: SpatialGrid[int] = SpatialGrid(cell_size=comm_range)
        self._static: Dict[int, ChannelEndpoint] = {}
        self._mobile: Dict[int, ChannelEndpoint] = {}
        # Per-mobile position memo: node id -> (timestamp, x, y), the last
        # evaluated position.  Entries are pure-function results (a path's
        # position at t never changes), so they need no invalidation —
        # they are refreshed when a newer timestamp is asked for, and a
        # *stale* entry still serves the Lipschitz exclusion test in
        # ``transmit``: a proxy farther from the sender than comm range
        # plus (its max speed x entry age) provably cannot receive, so its
        # mobility model is not re-evaluated at all.
        self._mobile_pos: Dict[int, tuple] = {}
        #: per-mobile Lipschitz motion bound (m/s; inf disables exclusion)
        self._mobile_reach: Dict[int, float] = {}
        self._active: List[BroadcastReception] = []
        #: per static node: (listener endpoints, their ids), grid-query order
        self._neighbor_cache: Dict[int, Tuple[Tuple[ChannelEndpoint, ...], Tuple[int, ...]]] = {}
        # Per static node (indexed by id): number of in-flight transmissions
        # from *other* senders covering it, and the latest end time among
        # every such transmission seen so far.  While the count is positive
        # the latest value equals the in-flight maximum (a finished
        # transmission can only hold the maximum once nothing outlasts it),
        # so carrier sense never scans the active list for static nodes.
        self._busy_count: List[int] = []
        self._busy_latest: List[float] = []
        #: descending sentinel ids assigned to in-flight transmissions whose
        #: mobile sender unregistered mid-airtime (see unregister_mobile)
        self._retired_sender_seq = 0
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_collided = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_static(self, endpoint: ChannelEndpoint) -> None:
        """Register a fixed-position endpoint (sensor node)."""
        if endpoint.node_id in self._static or endpoint.node_id in self._mobile:
            raise ValueError(f"endpoint {endpoint.node_id} already registered")
        node_id = endpoint.node_id
        position = endpoint.position_at(0.0)
        self._static[node_id] = endpoint
        self._grid.insert(node_id, position)
        # New static nodes change neighbourhoods; caches rebuild lazily.
        self._neighbor_cache.clear()
        if node_id >= len(self._busy_count):
            grow = node_id + 1 - len(self._busy_count)
            self._busy_count.extend([0] * grow)
            self._busy_latest.extend([0.0] * grow)
        # Seed the new node's busy bookkeeping from transmissions already on
        # the air (registration mid-run is rare but supported): in-flight
        # records computed their covered sets before this node existed.
        r_sq_eps = self.comm_range * self.comm_range + 1e-9
        for tx in self._active:
            if tx.sender_id == node_id:
                continue
            if tx.position.distance_sq_to(position) <= r_sq_eps:
                tx.covered += (node_id,)
                self._busy_count[node_id] += 1
                if tx.end_time > self._busy_latest[node_id]:
                    self._busy_latest[node_id] = tx.end_time

    def register_mobile(self, endpoint: ChannelEndpoint) -> None:
        """Register a moving endpoint (the user's proxy)."""
        if endpoint.node_id in self._static or endpoint.node_id in self._mobile:
            raise ValueError(f"endpoint {endpoint.node_id} already registered")
        self._mobile[endpoint.node_id] = endpoint
        # A reused id must not inherit the previous endpoint's memo.
        self._mobile_pos.pop(endpoint.node_id, None)
        self._mobile_reach[endpoint.node_id] = float(
            getattr(endpoint, "max_speed_mps", float("inf"))
        )

    def unregister_mobile(self, node_id: int) -> None:
        """Remove a mobile endpoint (its user's session was cancelled).

        Future transmissions no longer reach it; receptions already in
        flight hold a direct endpoint reference and resolve normally.
        Unknown ids are ignored so teardown is idempotent.

        A transmission the departing endpoint still has on the air keeps
        its record (the end-of-airtime event always fires and drains the
        per-node busy counters), but its ``sender_id`` is re-tagged to a
        unique sentinel: the id is only used to exclude the sender's own
        frame from its carrier sense, and a later ``register_mobile`` may
        legitimately reuse the id — without the re-tag the new endpoint
        would read the medium idle while the old frame is still in flight.
        """
        if self._mobile.pop(node_id, None) is None:
            return
        self._mobile_pos.pop(node_id, None)
        self._mobile_reach.pop(node_id, None)
        for tx in self._active:
            if tx.sender_id == node_id:
                self._retired_sender_seq -= 1
                tx.sender_id = self._retired_sender_seq

    def endpoint(self, node_id: int) -> ChannelEndpoint:
        """Look up a registered endpoint by id."""
        ep = self._static.get(node_id) or self._mobile.get(node_id)
        if ep is None:
            raise KeyError(f"no endpoint with id {node_id}")
        return ep

    # ------------------------------------------------------------------
    # Physical-layer queries
    # ------------------------------------------------------------------
    def airtime(self, frame: Frame) -> float:
        """Seconds the frame occupies the medium."""
        return self.preamble_s + (frame.wire_bytes() * 8.0) / self.bitrate_bps

    def in_range(self, a: ChannelEndpoint, b: ChannelEndpoint, time: float) -> bool:
        """Whether ``a`` and ``b`` are within communication range at ``time``."""
        return (
            a.position_at(time).distance_sq_to(b.position_at(time))
            <= self.comm_range * self.comm_range + 1e-9
        )

    def static_listeners(self, node_id: int) -> Tuple[ChannelEndpoint, ...]:
        """Static endpoints within range of static node ``node_id`` (cached).

        Excludes the node itself (a radio never receives its own frame);
        the others are ordered exactly as a fresh grid disk query would
        return them, so callers iterating the cache observe the same
        endpoint sequence (and schedule the same downstream events) as the
        uncached path.  Positions are fixed at t=0, so the tuple is computed
        once per node and reused for every transmission.
        """
        return self._static_cache(node_id)[0]

    def _static_cache(
        self, node_id: int
    ) -> Tuple[Tuple[ChannelEndpoint, ...], Tuple[int, ...]]:
        cached = self._neighbor_cache.get(node_id)
        if cached is None:
            position = self._static[node_id].position_at(0.0)
            ids = self._grid.query_disk(position, self.comm_range)
            static = self._static
            cached = (
                tuple(static[i] for i in ids if i != node_id),
                tuple(i for i in ids if i != node_id),
            )
            self._neighbor_cache[node_id] = cached
        return cached

    def listeners_near(self, position: Vec2, time: float) -> List[ChannelEndpoint]:
        """All endpoints within range of ``position`` at ``time`` (any state)."""
        ids = self._grid.query_disk(position, self.comm_range)
        found = [self._static[i] for i in ids]
        r_sq = self.comm_range * self.comm_range
        for ep in self._mobile.values():
            if ep.position_at(time).distance_sq_to(position) <= r_sq + 1e-9:
                found.append(ep)
        return found

    def _mobile_xy(self, endpoint: ChannelEndpoint) -> Tuple[float, float]:
        """The endpoint's memoized position at the current instant.

        Pure-function memo keyed on ``(endpoint, now)``: repeated queries
        within one kernel timestamp (carrier sense, then the transmit
        sweep) evaluate the mobility model once.  Only the *registered*
        endpoint for an id touches the memo — a stale endpoint sensing
        after its id was reused (cancel + resubmit) must not alias the
        new proxy's entry.
        """
        now = self.sim.now
        node_id = endpoint.node_id
        if (
            len(self._mobile) <= MOBILE_MEMO_THRESHOLD
            or self._mobile.get(node_id) is not endpoint
        ):
            pos = endpoint.position_at(now)
            return pos.x, pos.y
        entry = self._mobile_pos.get(node_id)
        if entry is not None and entry[0] == now:
            return entry[1], entry[2]
        pos = endpoint.position_at(now)
        self._mobile_pos[node_id] = (now, pos.x, pos.y)
        return pos.x, pos.y

    def medium_busy(self, endpoint: ChannelEndpoint) -> bool:
        """Carrier sense: is any in-flight transmission within range?

        The endpoint's own transmission does not count (the MAC knows it is
        transmitting); a sleeping radio cannot sense and reads idle.
        """
        if endpoint.radio.is_sleeping:
            return False
        node_id = endpoint.node_id
        if self._static.get(node_id) is endpoint:
            return self._busy_count[node_id] > 0
        # Mobile proxy: position changes between sense calls, scan in flight.
        px, py = self._mobile_xy(endpoint)
        r_sq_eps = self.comm_range * self.comm_range + 1e-9
        for tx in self._active:
            if tx.sender_id == node_id:
                continue
            tpos = tx.position
            dx = tpos.x - px
            dy = tpos.y - py
            if dx * dx + dy * dy <= r_sq_eps:
                return True
        return False

    def busy_until(self, endpoint: ChannelEndpoint) -> Optional[float]:
        """Latest end time among in-range in-flight transmissions, if any."""
        node_id = endpoint.node_id
        if self._static.get(node_id) is endpoint:
            if self._busy_count[node_id] == 0:
                return None
            return self._busy_latest[node_id]
        px, py = self._mobile_xy(endpoint)
        r_sq_eps = self.comm_range * self.comm_range + 1e-9
        latest: Optional[float] = None
        for tx in self._active:
            if tx.sender_id == node_id:
                continue
            tpos = tx.position
            dx = tpos.x - px
            dy = tpos.y - py
            if dx * dx + dy * dy <= r_sq_eps:
                if latest is None or tx.end_time > latest:
                    latest = tx.end_time
        return latest

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(
        self,
        sender: ChannelEndpoint,
        frame: Frame,
        on_airtime_end: Optional[Callable[[], None]] = None,
    ) -> float:
        """Put ``frame`` on the air from ``sender``; returns its airtime.

        The caller (MAC) is responsible for carrier sense and for not
        already transmitting.  Reception outcomes resolve when the airtime
        elapses; ``on_airtime_end``, if given, runs at the very end of the
        same batch event — after every receiver resolved — sparing the
        caller a second kernel event at the identical instant.  (The two
        events were always seq-adjacent, so folding preserves the global
        event order exactly.)
        """
        now = self.sim.now
        duration = self.airtime(frame)
        sender_id = sender.node_id
        position = sender.position_at(now)
        sender.radio.set_state_tx_guarded()
        # Static listeners come from the per-node cache when the sender is a
        # registered static node (no per-transmit grid query or list build,
        # and the sender is already excluded); a mobile sender's footprint
        # is evaluated at its current position.
        if self._static.get(sender_id) is sender:
            static_listeners, covered = self._static_cache(sender_id)
        else:
            ids = self._grid.query_disk(position, self.comm_range)
            static = self._static
            static_listeners = tuple(static[i] for i in ids if i != sender_id)
            covered = tuple(i for i in ids if i != sender_id)
            if (
                len(self._mobile) > MOBILE_MEMO_THRESHOLD
                and self._mobile.get(sender_id) is sender
            ):
                # The sender's own position is fresh — share it with the
                # per-timestamp memo the listener sweep below reads.
                self._mobile_pos[sender_id] = (now, position.x, position.y)
        end_time = now + duration
        record = BroadcastReception(frame, sender_id, position, end_time, covered)
        record.on_airtime_end = on_airtime_end
        receivers = record.receivers
        corrupt = record.corrupt
        reasons = record.reasons
        # Reception begin is inlined in both loops below (overlap corruption
        # + IDLE->RX radio/energy transition) — one reception starts per
        # listening neighbour per transmission, the hottest inner loop in
        # the model.  No per-listener object is allocated: the cohort's
        # state is appended to the record's parallel arrays, and each radio
        # tracks only a count plus its single still-clean reception.
        rx_state = RadioState.RX
        idle_state = RadioState.IDLE
        for listener in static_listeners:
            radio = listener.radio
            if not radio.listening:
                continue
            n = radio.rx_count
            radio.rx_count = n + 1
            if n:
                # Overlap: the newcomer and whatever was still clean at
                # this radio are both corrupt (first reason wins).
                corrupt.append(True)
                reasons.append("overlap")
                prev = radio._rx_record
                if prev is not None:
                    prev.corrupt[radio._rx_index] = True
                    prev.reasons[radio._rx_index] = "overlap"
                    radio._rx_record = None
                if radio.active_receptions:  # legacy objects (tests only)
                    for other in radio.active_receptions:
                        other.corrupt("overlap")
            else:
                corrupt.append(False)
                reasons.append(None)
                radio._rx_record = record
                radio._rx_index = len(receivers)
            receivers.append(listener)
            if radio._state is idle_state:
                radio._state = rx_state
                energy = radio.energy
                elapsed = now - energy._state_since
                if elapsed > 0:
                    energy._joules += elapsed * energy._state_w
                    energy._idle_s += elapsed
                    energy._state_since = now
                energy._state = rx_state
                energy._state_w = energy.model.rx_w
        px, py = position.x, position.y
        r_sq_eps = self.comm_range * self.comm_range + 1e-9
        mobiles = self._mobile
        if len(mobiles) <= MOBILE_MEMO_THRESHOLD:
            # Small fleets: evaluating every proxy directly is cheaper
            # than the memo bookkeeping below (measured crossover around
            # 16 proxies on the pinned hot-path scenarios).
            for listener in mobiles.values():
                if listener.node_id == sender_id:
                    continue
                lpos = listener.position_at(now)
                dx = lpos.x - px
                dy = lpos.y - py
                if dx * dx + dy * dy > r_sq_eps:
                    continue
                radio = listener.radio
                if not radio.listening:
                    continue
                radio.begin_batch_reception(record, listener)
        else:
            mobile_pos = self._mobile_pos
            mobile_reach = self._mobile_reach
            for listener in mobiles.values():
                nid = listener.node_id
                if nid == sender_id:
                    continue
                # Positions are memoized per (proxy, timestamp); a stale
                # memo plus the proxy's speed bound can prove it is still
                # out of range, in which case the mobility model is not
                # re-evaluated at all.  At 64 proxies this takes ~17% off
                # the whole-run wall; below the threshold the bookkeeping
                # outweighs the saved evaluations.
                entry = mobile_pos.get(nid)
                if entry is not None and entry[0] == now:
                    lx = entry[1]
                    ly = entry[2]
                else:
                    if entry is not None:
                        dx = entry[1] - px
                        dy = entry[2] - py
                        # 1e-6 m of slack keeps the exclusion strictly
                        # more conservative than the exact r_sq_eps test.
                        reach = (
                            self.comm_range
                            + mobile_reach[nid] * (now - entry[0])
                            + 1e-6
                        )
                        if dx * dx + dy * dy > reach * reach:
                            continue
                    lpos = listener.position_at(now)
                    lx = lpos.x
                    ly = lpos.y
                    mobile_pos[nid] = (now, lx, ly)
                dx = lx - px
                dy = ly - py
                if dx * dx + dy * dy > r_sq_eps:
                    continue
                radio = listener.radio
                if not radio.listening:
                    continue
                # The plain batch-begin method — no fourth inlined copy of
                # the corruption/energy logic to keep in sync.
                radio.begin_batch_reception(record, listener)
        self._active.append(record)
        busy_count = self._busy_count
        busy_latest = self._busy_latest
        for node_id in covered:
            busy_count[node_id] += 1
            if end_time > busy_latest[node_id]:
                busy_latest[node_id] = end_time
        self.frames_sent += 1
        tracer = self.tracer
        if tracer is not None:
            if tracer.wants("tx"):
                tracer.emit("tx", now, frame=frame.seq, frame_kind=frame.kind, src=frame.src)
            else:
                tracer.tick("tx")
        self.sim.schedule_fast(duration, self._finish_transmission, sender, record)
        return duration

    def _finish_transmission(
        self, sender: ChannelEndpoint, record: BroadcastReception
    ) -> None:
        """End-of-airtime batch event: resolve every receiver of one frame.

        One kernel event per frame (scheduled by :meth:`transmit`) walks
        the record's parallel arrays — reception end, RX->IDLE radio and
        energy transitions, collision/delivery outcome and upward dispatch
        all happen in this loop, in the same receiver order the per-object
        path used, so downstream event sequences are unchanged.
        """
        self._active.remove(record)
        busy_count = self._busy_count
        for node_id in record.covered:
            busy_count[node_id] -= 1
        sender.radio.end_transmission()
        now = self.sim.now
        tracer = self.tracer
        frame = record.frame
        rx_state = RadioState.RX
        idle_state = RadioState.IDLE
        corrupt = record.corrupt
        reasons = record.reasons
        emit_collision = tracer is not None and tracer.wants("collision")
        emit_rx = tracer is not None and tracer.wants("rx")
        collided = 0
        delivered = 0
        for i, receiver in enumerate(record.receivers):
            radio = receiver.radio
            n = radio.rx_count - 1
            radio.rx_count = n
            if not n and radio._state is rx_state:
                radio._state = idle_state
                energy = radio.energy
                elapsed = now - energy._state_since
                if elapsed > 0:
                    energy._joules += elapsed * energy._state_w
                    energy._rx_s += elapsed
                    energy._state_since = now
                energy._state = idle_state
                energy._state_w = energy.model.idle_w
            if corrupt[i]:
                collided += 1
                if emit_collision:
                    tracer.emit(
                        "collision",
                        now,
                        frame=frame.seq,
                        frame_kind=frame.kind,
                        at=receiver.node_id,
                        reason=reasons[i],
                    )
                continue
            # A clean reception reaching its end is, by the overlap rules,
            # the unique clean one at its radio — release the radio's slot.
            radio._rx_record = None
            delivered += 1
            if emit_rx:
                tracer.emit(
                    "rx",
                    now,
                    frame=frame.seq,
                    frame_kind=frame.kind,
                    at=receiver.node_id,
                )
            receiver.deliver_frame(frame)
        self.frames_collided += collided
        self.frames_delivered += delivered
        if tracer is not None:
            # Batch the unwatched tick counting: one counter bump per frame
            # instead of one per receiver.
            if collided and not emit_collision:
                tracer.tick_many("collision", collided)
            if delivered and not emit_rx:
                tracer.tick_many("rx", delivered)
        callback = record.on_airtime_end
        if callback is not None:
            callback()
