"""Endpoints: static sensor nodes and the mobile proxy.

A :class:`SensorNode` bundles the per-node stack (radio, MAC, optional sleep
scheduler, sensor) and dispatches received application frames to protocol
handlers registered by kind.  Protocol modules (routing, dissemination,
collection, ...) register their handlers at network construction and keep
their own per-node state; the node itself stays protocol-agnostic.

A :class:`MobileEndpoint` is the user's proxy: an always-on radio whose
position is a function of time supplied by the mobility model.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..geometry.vec import Vec2
from ..sim.kernel import Simulator
from ..sim.trace import Tracer
from .channel import Channel
from .energy import PowerModel
from .field import ScalarField, UniformField
from .mac import MacConfig, MacLayer, SendCallback
from .packet import Frame
from .psm import PsmConfig, SleepScheduler, delivery_time
from .radio import Radio

#: Handler signature: ``handler(node, frame)``.
FrameHandler = Callable[["SensorNode", Frame], None]

#: Role constants.
ROLE_ACTIVE = "active"
ROLE_SLEEPER = "sleeper"


class SensorNode:
    """One static sensor node with its full communication stack."""

    def __init__(
        self,
        node_id: int,
        position: Vec2,
        sim: Simulator,
        channel: Channel,
        rng: np.random.Generator,
        mac_config: Optional[MacConfig] = None,
        power_model: Optional[PowerModel] = None,
        field: Optional[ScalarField] = None,
        sensor_noise_std: float = 0.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.node_id = node_id
        self.position = position
        self.sim = sim
        self.channel = channel
        self.rng = rng
        self.tracer = tracer
        self.field = field or UniformField()
        self.sensor_noise_std = sensor_noise_std
        self.radio = Radio(sim, node_id, power_model or PowerModel())
        self.mac = MacLayer(self, sim, channel, rng, mac_config, tracer)
        self.mac.receive_callback = self._dispatch
        # Bind channel delivery straight to the MAC: one call per reception
        # instead of two (the class method below documents the contract).
        self.deliver_frame = self.mac.on_frame  # type: ignore[method-assign]
        self.role = ROLE_ACTIVE
        #: set by the fault plane while the node is down (forced sleep with
        #: wake blocked); protocol recovery paths key off this flag
        self.crashed = False
        self.sleep_scheduler: Optional[SleepScheduler] = None
        #: all nodes within communication range (set by the network builder)
        self.neighbors: List["SensorNode"] = []
        #: backbone subset of ``neighbors`` (set after power management)
        self.active_neighbors: List["SensorNode"] = []
        self._handlers: Dict[str, FrameHandler] = {}

    # ------------------------------------------------------------------
    # ChannelEndpoint protocol
    # ------------------------------------------------------------------
    def position_at(self, time: float) -> Vec2:
        """Static nodes never move."""
        return self.position

    def deliver_frame(self, frame: Frame) -> None:
        """Channel delivery entry point."""
        self.mac.on_frame(frame)

    # ------------------------------------------------------------------
    # Application layer
    # ------------------------------------------------------------------
    def register_handler(self, kind: str, handler: FrameHandler) -> None:
        """Install the protocol handler for frames of ``kind``.

        Raises:
            ValueError: when a second protocol claims the same kind —
                almost certainly a wiring bug worth failing loudly on.
        """
        if kind in self._handlers:
            raise ValueError(f"handler for kind {kind!r} already registered")
        self._handlers[kind] = handler

    def _dispatch(self, frame: Frame) -> None:
        handler = self._handlers.get(frame.kind)
        if handler is not None:
            handler(self, frame)
        elif self.tracer is not None:
            self.tracer.emit("unhandled-frame", self.sim.now, at=self.node_id, frame_kind=frame.kind)

    def send(self, frame: Frame, callback: Optional[SendCallback] = None) -> None:
        """Queue a frame on this node's MAC."""
        self.mac.send(frame, callback)

    def handle_local(self, kind: str, payload: object, size_bytes: int = 0) -> None:
        """Deliver a message to this node's own handler without the radio.

        Used when an encapsulating protocol (geo routing, flooding) unwraps
        an inner message at its destination node.
        """
        frame = Frame(
            kind=kind,
            src=self.node_id,
            dst=self.node_id,
            size_bytes=size_bytes,
            payload=payload,
        )
        self._dispatch(frame)

    def send_when_listening(
        self,
        frame: Frame,
        dest: "SensorNode",
        callback: Optional[SendCallback] = None,
    ) -> None:
        """Buffer-and-forward: transmit when ``dest`` is scheduled to listen.

        This is the PSM buffering behaviour: backbone nodes hold frames for
        sleeping neighbours and release them in the next active window.
        A tiny random stagger avoids every buffered sender hitting the
        window's first microsecond simultaneously.
        """
        now = self.sim.now
        at = delivery_time(dest.sleep_scheduler, now)
        if at <= now:
            self.send(frame, callback)
            return
        stagger = float(self.rng.uniform(0.0, 2e-3))
        self.sim.schedule_at_fast(at + stagger, self.send, frame, callback)

    # ------------------------------------------------------------------
    # Roles and sensing
    # ------------------------------------------------------------------
    @property
    def is_active(self) -> bool:
        """Whether this node is part of the always-on backbone."""
        return self.role == ROLE_ACTIVE

    def make_sleeper(self, psm_config: PsmConfig) -> None:
        """Demote the node to a duty-cycled sleeper and start its schedule.

        The scheduler joins the kernel's shared per-phase wake wheel (all
        sleepers on one beacon phase are serviced by a single boundary
        event per window edge — see :class:`repro.net.psm.WakeWheel`).
        """
        self.role = ROLE_SLEEPER
        self.sleep_scheduler = SleepScheduler(self.sim, self.radio, self.mac, psm_config)
        self.sleep_scheduler.start()

    def read_sensor(self) -> float:
        """Sample the physical field at this node, with sensor noise."""
        value = self.field.value(self.position, self.sim.now)
        if self.sensor_noise_std > 0:
            value += float(self.rng.normal(0.0, self.sensor_noise_std))
        return value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SensorNode {self.node_id} {self.role} @{self.position}>"


class MobileEndpoint:
    """The user's proxy device: mobile, always-on, full MAC stack."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        channel: Channel,
        rng: np.random.Generator,
        position_fn: Callable[[float], Vec2],
        mac_config: Optional[MacConfig] = None,
        power_model: Optional[PowerModel] = None,
        tracer: Optional[Tracer] = None,
        max_speed_mps: float = float("inf"),
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.channel = channel
        self.rng = rng
        self.tracer = tracer
        self._position_fn = position_fn
        #: Lipschitz bound on the endpoint's motion (m/s); the channel's
        #: per-timestamp position cache uses it to prove a proxy still out
        #: of radio range without re-evaluating the mobility model.  The
        #: conservative default (inf) disables the shortcut.
        self.max_speed_mps = max_speed_mps
        # Bind the mobility model straight onto the instance: the channel
        # queries every mobile's position once per transmission.
        self.position_at = position_fn  # type: ignore[method-assign]
        self.radio = Radio(sim, node_id, power_model or PowerModel())
        self.mac = MacLayer(self, sim, channel, rng, mac_config, tracer)
        self.mac.receive_callback = self._dispatch
        self.deliver_frame = self.mac.on_frame  # type: ignore[method-assign]
        self._handlers: Dict[str, Callable[["MobileEndpoint", Frame], None]] = {}

    def position_at(self, time: float) -> Vec2:
        """Proxy position from the mobility model."""
        return self._position_fn(time)

    @property
    def position(self) -> Vec2:
        """Current position."""
        return self._position_fn(self.sim.now)

    def deliver_frame(self, frame: Frame) -> None:
        self.mac.on_frame(frame)

    def register_handler(
        self, kind: str, handler: Callable[["MobileEndpoint", Frame], None]
    ) -> None:
        """Install the proxy-side handler for frames of ``kind``."""
        if kind in self._handlers:
            raise ValueError(f"handler for kind {kind!r} already registered")
        self._handlers[kind] = handler

    def _dispatch(self, frame: Frame) -> None:
        handler = self._handlers.get(frame.kind)
        if handler is not None:
            handler(self, frame)

    def send(self, frame: Frame, callback: Optional[SendCallback] = None) -> None:
        """Queue a frame on the proxy's MAC."""
        self.mac.send(frame, callback)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MobileEndpoint {self.node_id} @{self.position}>"
