"""Optional numpy acceleration for the batched reception physics.

The channel's batch pipeline (see :mod:`repro.net.channel`) resolves a
whole receiver cohort per frame, but until this module the per-cohort
corruption-marking, energy-accounting and delivery loops were pure-Python
iteration — ~55% of wall time at quick scale.  This module moves the
per-static-node radio and energy state into struct-of-arrays storage
(:class:`VectorStore`) so those loops become a handful of numpy array
operations over the cohort, and batches mobile ``position_at`` evaluation
across the whole proxy fleet per timestamp (:class:`MobileSweep`).

Three rules keep it safe:

* **numpy is optional.**  The module imports without numpy; the channel
  then runs the untouched pure-Python reference loops.  The
  ``REPRO_VECTORIZE`` environment variable is a kill-switch (``0`` /
  ``off`` / ``reference`` force the reference path even with numpy
  installed — the no-numpy CI leg uses it, since other subsystems import
  numpy unconditionally for RNG streams).
* **Bit-identity.**  Every accelerated operation is an elementwise
  float64/int op in the same order as the scalar code — no reductions, no
  reassociation — so results (frame counters, energy integrals, success
  ratios) are bit-identical to the reference path.  The golden determinism
  pins and ``tests/test_net_vectorized.py`` enforce this on both paths.
* **Full shim compatibility.**  Binding a radio to the store swaps its
  class to :class:`VectorRadio` (and its meter to
  :class:`VectorEnergyMeter`) whose properties redirect every field the
  reference code reads or writes into the arrays — so the pure-Python
  loops, the PSM scheduler, the MAC and every existing test keep working
  unchanged against store-backed radios, just through properties.

Cohort-size gating happens at two levels, the way
``MOBILE_MEMO_THRESHOLD`` gates the memo: a channel only migrates radios
into the store once a transmission's static cohort reaches
``STORE_BIND_THRESHOLD`` (bound radios pay property-access tax in the
scalar loops, so narrow worlds must keep plain radios), and a bound
channel still routes sub-``VECTOR_COHORT_THRESHOLD`` transmissions
through the reference loops.  The :class:`MobileSweep` is independent of
the store and engages from ``MOBILE_SWEEP_THRESHOLD`` proxies on both
begin paths.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, List, Optional

from .energy import EnergyMeter, PowerModel, RadioState
from .radio import Radio

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.kernel import Simulator

try:  # numpy is an optional accelerator here (hard dep elsewhere for RNG)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the sys.modules shim
    _np = None

#: Static-listener cohort width at which a channel migrates its radios
#: into the :class:`VectorStore` (a one-way ratchet, taken on the first
#: transmission that wide).  Binding is NOT free for narrow worlds: every
#: scalar field read on a bound radio becomes a property into the arrays,
#: which slows the reference loops ~4x — so the store only pays where the
#: dense kernels win, and the measured crossover (sequential broadcast
#: micro-bench, CPython 3.11 + numpy 2.x, 1-CPU container) sits near 80
#: listeners: ref/vec per-frame 48/60 us at width 48, 63/70 at 64, 91/77
#: at 96, 153/108 at 192.  Worlds whose cohorts never reach this width
#: keep plain radios and run the reference loops at full scalar speed.
STORE_BIND_THRESHOLD = 80

#: Static-listener cohort size at which a *store-bound* channel switches a
#: transmission from the reference loops to the dense array kernels.
#: Below this the fixed per-kernel numpy dispatch outweighs the saved
#: iteration even against property-backed scalar loops.
VECTOR_COHORT_THRESHOLD = 12

#: Mobile-fleet size at which both begin paths batch the whole fleet's
#: ``position_at`` through :class:`MobileSweep` instead of a scalar
#: per-proxy loop.  One batched segment evaluation costs the same for 1
#: proxy as for 64, so it only pays once the fleet is wide: measured on
#: the pinned scenarios, the sweep loses ~14% of whole-run wall at 8
#: proxies, is a wash at 16, and wins ~19% at 64 — so it engages exactly
#: where the scalar paths switch to the memo (``MOBILE_MEMO_THRESHOLD``,
#: 16), replacing the memo + Lipschitz bookkeeping when numpy is present.
MOBILE_SWEEP_THRESHOLD = 17

#: Environment kill-switch values that force the reference path.
_OFF_VALUES = ("0", "off", "false", "reference", "no")

#: Radio state codes used in the arrays (indexes into ``_STATE_OF`` and the
#: per-state wattage table order).
_IDLE, _RX, _TX, _SLEEP = 0, 1, 2, 3
_CODE_OF = {
    RadioState.IDLE: _IDLE,
    RadioState.RX: _RX,
    RadioState.TX: _TX,
    RadioState.SLEEP: _SLEEP,
}
_STATE_OF = (RadioState.IDLE, RadioState.RX, RadioState.TX, RadioState.SLEEP)

#: Public aliases for the channel's vector paths.
CODE_IDLE, CODE_RX, CODE_TX, CODE_SLEEP = _IDLE, _RX, _TX, _SLEEP


def numpy_or_none():
    """The numpy module when acceleration is available and enabled.

    Consulted at :class:`~repro.net.channel.Channel` construction (not
    import time), so tests can flip ``REPRO_VECTORIZE`` per channel.
    """
    env = os.environ.get("REPRO_VECTORIZE", "").strip().lower()
    if env in _OFF_VALUES:
        return None
    return _np


def accelerator_name() -> str:
    """Which physics path a fresh channel would run (for perf reports)."""
    np_mod = numpy_or_none()
    if np_mod is None:
        return "reference"
    return f"numpy-{np_mod.__version__}"


class VectorStore:
    """Struct-of-arrays radio + energy state for static nodes, by node id.

    One instance per :class:`~repro.net.channel.Channel`; arrays are
    indexed by ``node_id`` (dense from the network builder) and grown on
    registration.  :meth:`bind` migrates one radio's scalar state into the
    arrays and swaps its class so every existing access path still works.
    """

    def __init__(self, np_mod) -> None:
        self.np = np_mod
        self._capacity = 0
        n = 0
        self.state = np_mod.zeros(n, dtype=np_mod.int8)
        self.estate = np_mod.zeros(n, dtype=np_mod.int8)
        self.listening = np_mod.zeros(n, dtype=bool)
        self.rx_count = np_mod.zeros(n, dtype=np_mod.int32)
        self.rx_index = np_mod.zeros(n, dtype=np_mod.int32)
        self.rx_record = np_mod.empty(n, dtype=object)
        self.joules = np_mod.zeros(n, dtype=float)
        self.state_w = np_mod.zeros(n, dtype=float)
        self.state_since = np_mod.zeros(n, dtype=float)
        self.idle_s = np_mod.zeros(n, dtype=float)
        self.rx_s = np_mod.zeros(n, dtype=float)
        self.sleep_s = np_mod.zeros(n, dtype=float)
        self.tx_s = np_mod.zeros(n, dtype=float)
        # Per-node wattage by state code: w_table[code][node_id].
        self.idle_w = np_mod.zeros(n, dtype=float)
        self.rx_w = np_mod.zeros(n, dtype=float)
        self.tx_w = np_mod.zeros(n, dtype=float)
        self.sleep_w = np_mod.zeros(n, dtype=float)
        self.w_table = (self.idle_w, self.rx_w, self.tx_w, self.sleep_w)
        self._alloc_buffers(n)

    def _alloc_buffers(self, n: int) -> None:
        """(Re)allocate the scratch buffers the channel kernels reuse.

        The kernels run *dense* (full array width, masked) so their cost is
        independent of cohort size; these buffers keep them allocation-free
        per transmission.
        """
        np_mod = self.np
        self.buf_active = np_mod.empty(n, dtype=bool)
        self.buf_b2 = np_mod.empty(n, dtype=bool)
        self.buf_b3 = np_mod.empty(n, dtype=bool)
        self.buf_f1 = np_mod.empty(n, dtype=float)
        self.buf_f2 = np_mod.empty(n, dtype=float)
        self.arange_buf = np_mod.arange(n, dtype=np_mod.int32)

    def _ensure(self, node_id: int) -> None:
        if node_id < self._capacity:
            return
        np_mod = self.np
        new_cap = max(node_id + 1, self._capacity * 2, 16)
        for name in (
            "state", "estate", "listening", "rx_count", "rx_index",
            "rx_record", "joules", "state_w", "state_since", "idle_s",
            "rx_s", "sleep_s", "tx_s", "idle_w", "rx_w", "tx_w", "sleep_w",
        ):
            old = getattr(self, name)
            grown = np_mod.zeros(new_cap, dtype=old.dtype)
            grown[: self._capacity] = old
            setattr(self, name, grown)
        self.w_table = (self.idle_w, self.rx_w, self.tx_w, self.sleep_w)
        self._alloc_buffers(new_cap)
        self._capacity = new_cap

    def bind(self, radio: Radio, index: int) -> None:
        """Migrate ``radio`` (and its meter) onto the arrays at ``index``.

        The radio keeps its identity — callers holding references see the
        same object — but its class becomes :class:`VectorRadio` and its
        scalar fields now live in the store.  Idempotent per radio.
        """
        if radio.__class__ is VectorRadio:
            return
        i = index
        self._ensure(i)
        meter = radio.energy
        model = meter.model
        self.state[i] = _CODE_OF[radio._state]
        self.estate[i] = _CODE_OF[meter._state]
        self.listening[i] = radio.listening
        self.rx_count[i] = radio.rx_count
        self.rx_index[i] = radio._rx_index
        self.rx_record[i] = radio._rx_record
        self.joules[i] = meter._joules
        self.state_w[i] = meter._state_w
        self.state_since[i] = meter._state_since
        self.idle_s[i] = meter._idle_s
        self.rx_s[i] = meter._rx_s
        self.sleep_s[i] = meter._sleep_s
        self.tx_s[i] = meter._tx_s
        self.idle_w[i] = model.idle_w
        self.rx_w[i] = model.rx_w
        self.tx_w[i] = model.tx_w
        self.sleep_w[i] = model.sleep_w
        # Drop the migrated scalar fields, then swap the class: the
        # VectorRadio properties (data descriptors) now serve every access.
        d = radio.__dict__
        for name in ("_state", "listening", "rx_count", "_rx_record", "_rx_index"):
            d.pop(name, None)
        radio._vstore = self
        radio._vi = i
        radio.__class__ = VectorRadio
        radio.energy = VectorEnergyMeter(meter.sim, model, self, i)


def _radio_slot_property(array_name: str):
    def getter(self):
        return getattr(self._vstore, array_name)[self._vi]

    def setter(self, value):
        getattr(self._vstore, array_name)[self._vi] = value

    return property(getter, setter)


class VectorRadio(Radio):
    """A :class:`Radio` whose scalar state lives in a :class:`VectorStore`.

    Instances are never constructed directly — :meth:`VectorStore.bind`
    swaps a plain radio's class after migrating its fields.  Properties
    keep every inherited method and every external reader working; the
    hottest entry point (``set_state``) is overridden with direct array
    access.
    """

    listening = _radio_slot_property("listening")
    rx_count = _radio_slot_property("rx_count")
    _rx_record = _radio_slot_property("rx_record")
    _rx_index = _radio_slot_property("rx_index")

    @property
    def _state(self) -> RadioState:
        return _STATE_OF[self._vstore.state[self._vi]]

    @_state.setter
    def _state(self, value: RadioState) -> None:
        self._vstore.state[self._vi] = _CODE_OF[value]

    # The three state predicates the MAC and PSM read per attempt: answer
    # from the arrays without building the enum.
    @property
    def is_sleeping(self) -> bool:
        return self._vstore.state[self._vi] == _SLEEP

    @property
    def is_transmitting(self) -> bool:
        return self._vstore.state[self._vi] == _TX

    @property
    def is_listening(self) -> bool:
        return bool(self._vstore.listening[self._vi])

    def set_state(self, new_state: RadioState) -> None:
        """Array-backed twin of :meth:`Radio.set_state` (same semantics)."""
        store = self._vstore
        i = self._vi
        code = _CODE_OF[new_state]
        if code == store.state[i]:
            return
        if code == _TX or code == _SLEEP:
            if self.active_receptions:
                for reception in self.active_receptions:
                    reception.corrupt("receiver_left_listening")
            record = store.rx_record[i]
            if record is not None:
                idx = store.rx_index[i]
                record.corrupt[idx] = True
                record.reasons[idx] = "receiver_left_listening"
                store.rx_record[i] = None
            store.listening[i] = False
        else:
            store.listening[i] = True
        store.state[i] = code
        # Energy integration, same order as the scalar inline in
        # Radio.set_state: close the open interval, then retag the state.
        now = self.sim.now
        elapsed = now - store.state_since[i]
        if elapsed > 0:
            store.joules[i] += elapsed * store.state_w[i]
            estate = store.estate[i]
            if estate == _IDLE:
                store.idle_s[i] += elapsed
            elif estate == _SLEEP:
                store.sleep_s[i] += elapsed
            elif estate == _RX:
                store.rx_s[i] += elapsed
            else:
                store.tx_s[i] += elapsed
            store.state_since[i] = now
        store.estate[i] = code
        store.state_w[i] = store.w_table[code][i]


def _meter_slot_property(array_name: str):
    def getter(self):
        return getattr(self._vstore, array_name)[self._vi]

    def setter(self, value):
        getattr(self._vstore, array_name)[self._vi] = value

    return property(getter, setter)


class VectorEnergyMeter(EnergyMeter):
    """An :class:`EnergyMeter` whose accumulators live in the store.

    The parent's slot descriptors are shadowed by properties (the subclass
    declares no competing slots), so the inherited ``_settle``/readout
    methods run unchanged against the arrays.  Readouts wrap to plain
    ``float`` so store-backed meters never leak numpy scalars into report
    JSON.
    """

    __slots__ = ("_vstore", "_vi")

    _state_w = _meter_slot_property("state_w")
    _state_since = _meter_slot_property("state_since")
    _joules = _meter_slot_property("joules")
    _tx_s = _meter_slot_property("tx_s")
    _rx_s = _meter_slot_property("rx_s")
    _idle_s = _meter_slot_property("idle_s")
    _sleep_s = _meter_slot_property("sleep_s")

    def __init__(
        self, sim: "Simulator", model: PowerModel, store: VectorStore, index: int
    ) -> None:
        self.sim = sim
        self.model = model
        self._vstore = store
        self._vi = index

    @property
    def _state(self) -> RadioState:
        return _STATE_OF[self._vstore.estate[self._vi]]

    @_state.setter
    def _state(self, value: RadioState) -> None:
        self._vstore.estate[self._vi] = _CODE_OF[value]

    def total_joules(self) -> float:
        return float(super().total_joules())

    def seconds_in(self, state: RadioState) -> float:
        return float(super().seconds_in(state))

    def average_power_w(self) -> float:
        return float(super().average_power_w())


class MobileSweep:
    """Batched ``position_at`` over the whole mobile fleet per timestamp.

    Each proxy's current path segment is held as ``(t0, dt, ax, ay, dx,
    dy)`` so one elementwise evaluation ``a + d * ((now - t0) / dt)``
    yields every proxy's position — the exact float expression
    :meth:`~repro.mobility.path.PiecewisePath.position_at` computes per
    call, so the values are bit-identical.  Segments advance monotonically
    (channel queries never go back in time); clamped stretches (before the
    first waypoint, after the last) use ``d = 0`` so the evaluation
    reproduces the clamp exactly.  Proxies whose ``position_at`` is not a
    plain :class:`~repro.mobility.path.PiecewisePath` method are evaluated
    per call into the same arrays (opaque fallback).
    """

    def __init__(self, np_mod) -> None:
        self.np = np_mod
        self.dirty = True
        self._last_t: Optional[float] = None
        self.endpoints: List = []
        self.slot_of: Dict[int, int] = {}
        self.ids = np_mod.empty(0, dtype=np_mod.int64)
        self.xs = np_mod.empty(0, dtype=float)
        self.ys = np_mod.empty(0, dtype=float)

    def rebuild(self, mobiles: Dict[int, object]) -> None:
        """Rebuild the segment arrays from the registered fleet."""
        from ..mobility.path import PiecewisePath  # no import cycle: lazy

        np_mod = self.np
        eps = list(mobiles.values())
        n = len(eps)
        self.endpoints = eps
        self.slot_of = {ep.node_id: k for k, ep in enumerate(eps)}
        self.ids = np_mod.array(
            [ep.node_id for ep in eps], dtype=np_mod.int64
        ) if n else np_mod.empty(0, dtype=np_mod.int64)
        self.t0 = np_mod.zeros(n, dtype=float)
        self.dt = np_mod.ones(n, dtype=float)
        self.ax = np_mod.zeros(n, dtype=float)
        self.ay = np_mod.zeros(n, dtype=float)
        self.dx = np_mod.zeros(n, dtype=float)
        self.dy = np_mod.zeros(n, dtype=float)
        self.seg_end = np_mod.full(n, np_mod.inf)
        # Per-slot remaining segments, consumed front-to-back as time
        # advances: [(end, t0, dt, ax, ay, dx, dy), ...].
        self._pending: List[Optional[List[tuple]]] = [None] * n
        self._opaque: List[int] = []
        for k, ep in enumerate(eps):
            fn = ep.position_at
            path = getattr(fn, "__self__", None)
            if (
                isinstance(path, PiecewisePath)
                and getattr(fn, "__func__", None) is PiecewisePath.position_at
            ):
                self._pending[k] = self._segments(path)
                self._advance(k, self._last_t if self._last_t is not None else 0.0)
            else:
                self._opaque.append(k)
        self.dirty = False
        self._last_t = None  # force a fresh evaluation

    @staticmethod
    def _segments(path) -> List[tuple]:
        """``(end, t0, dt, ax, ay, dx, dy)`` per stretch, time-ordered."""
        wps = path.waypoints
        first = wps[0]
        segs = [
            # Clamped before the start: d = 0 reproduces the clamp exactly.
            (first.time, 0.0, 1.0, first.position.x, first.position.y, 0.0, 0.0)
        ]
        for a, b in zip(wps, wps[1:]):
            pa, pb = a.position, b.position
            segs.append(
                (
                    b.time,
                    a.time,
                    b.time - a.time,
                    pa.x,
                    pa.y,
                    pb.x - pa.x,
                    pb.y - pa.y,
                )
            )
        last = wps[-1]
        segs.append(
            (float("inf"), last.time, 1.0, last.position.x, last.position.y, 0.0, 0.0)
        )
        return segs

    def _advance(self, k: int, now: float) -> None:
        segs = self._pending[k]
        while len(segs) > 1 and now >= segs[0][0]:
            segs.pop(0)
        end, t0, dt, ax, ay, dx, dy = segs[0]
        self.seg_end[k] = end
        self.t0[k] = t0
        self.dt[k] = dt
        self.ax[k] = ax
        self.ay[k] = ay
        self.dx[k] = dx
        self.dy[k] = dy

    def positions_at(self, now: float):
        """``(xs, ys)`` for every slot at ``now`` (cached per timestamp)."""
        if now == self._last_t:
            return self.xs, self.ys
        np_mod = self.np
        stale = np_mod.nonzero(self.seg_end <= now)[0]
        for k in stale.tolist():
            self._advance(k, now)
        frac = (now - self.t0) / self.dt
        xs = self.ax + self.dx * frac
        ys = self.ay + self.dy * frac
        for k in self._opaque:
            pos = self.endpoints[k].position_at(now)
            xs[k] = pos.x
            ys[k] = pos.y
        self.xs = xs
        self.ys = ys
        self._last_t = now
        return xs, ys
