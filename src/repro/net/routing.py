"""Geographic routing and area anycast over the backbone.

MobiQuery relays prefetch messages to *pickup points* with an **area
anycast** (the paper cites SPEED): deliver to any node within ``Rp`` of a
target location.  We implement greedy geographic forwarding over the
always-on backbone — each hop forwards to the active neighbour closest to
the target that makes strict progress — with two pragmatic touches:

* per-hop unicast rides the MAC's ACK/retry machinery, and on link failure
  the router fails over to the next-best neighbour;
* if greedy forwarding reaches a local minimum (no neighbour is closer),
  the message is delivered *there*: that node is the best the backbone can
  do, matching the paper's note that ``Rp`` "may vary depending on the
  density of the sensor network" to guarantee delivery.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional

from ..geometry.vec import Vec2
from ..sim.trace import Tracer
from .network import Network
from .node import SensorNode
from .packet import Frame

#: wire overhead of the geo envelope beyond the inner message
GEO_HEADER_BYTES = 12

_route_ids = itertools.count(1)


@dataclass
class GeoEnvelope:
    """A message in transit toward a geographic target."""

    dest: Vec2
    deliver_radius: float
    inner_kind: str
    inner_payload: Any
    inner_size: int
    route_id: int = field(default_factory=lambda: next(_route_ids))
    hops: int = 0
    max_hops: int = 64

    def wire_size(self) -> int:
        """Bytes the envelope occupies on the air."""
        return self.inner_size + GEO_HEADER_BYTES


class GeoRouter:
    """Greedy geographic forwarding manager (one per run)."""

    FRAME_KIND = "geo"

    def __init__(self, network: Network, tracer: Optional[Tracer] = None) -> None:
        self.network = network
        self.tracer = tracer if tracer is not None else network.tracer
        self.delivered = 0
        self.dropped = 0
        for node in network.nodes:
            node.register_handler(self.FRAME_KIND, self._on_frame)

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def send(
        self,
        origin: SensorNode,
        dest: Vec2,
        deliver_radius: float,
        inner_kind: str,
        inner_payload: Any,
        inner_size: int,
        max_hops: int = 64,
    ) -> GeoEnvelope:
        """Route a message from ``origin`` toward ``dest``.

        Delivery happens at the first node within ``deliver_radius`` of
        ``dest`` (or the closest reachable node on greedy failure): the
        inner message is dispatched to that node's ``inner_kind`` handler.
        """
        envelope = GeoEnvelope(
            dest=dest,
            deliver_radius=deliver_radius,
            inner_kind=inner_kind,
            inner_payload=inner_payload,
            inner_size=inner_size,
            max_hops=max_hops,
        )
        self._route_from(origin, envelope)
        return envelope

    # ------------------------------------------------------------------
    # Forwarding engine
    # ------------------------------------------------------------------
    def _on_frame(self, node: SensorNode, frame: Frame) -> None:
        envelope: GeoEnvelope = frame.payload
        self._route_from(node, envelope)

    def _route_from(self, node: SensorNode, envelope: GeoEnvelope) -> None:
        my_distance = node.position.distance_to(envelope.dest)
        if my_distance <= envelope.deliver_radius:
            self._deliver(node, envelope)
            return
        if envelope.hops >= envelope.max_hops:
            self._drop(node, envelope, "hop_limit")
            return
        candidates = self._progress_candidates(node, envelope.dest, my_distance)
        if not candidates:
            # Local minimum of the backbone: this is the closest the anycast
            # can get, so deliver here (expanded-radius delivery).
            self.tracer.emit(
                "anycast-expanded",
                node.sim.now,
                at=node.node_id,
                distance=my_distance,
            )
            self._deliver(node, envelope)
            return
        self._try_candidates(node, envelope, candidates, 0)

    def _progress_candidates(
        self, node: SensorNode, dest: Vec2, my_distance: float
    ) -> List[SensorNode]:
        candidates = [
            nb
            for nb in node.active_neighbors
            if nb.position.distance_to(dest) < my_distance - 1e-9
        ]
        candidates.sort(key=lambda nb: nb.position.distance_sq_to(dest))
        return candidates

    def _try_candidates(
        self,
        node: SensorNode,
        envelope: GeoEnvelope,
        candidates: List[SensorNode],
        index: int,
    ) -> None:
        if index >= len(candidates):
            self._drop(node, envelope, "all_links_failed")
            return
        next_hop = candidates[index]
        forwarded = GeoEnvelope(
            dest=envelope.dest,
            deliver_radius=envelope.deliver_radius,
            inner_kind=envelope.inner_kind,
            inner_payload=envelope.inner_payload,
            inner_size=envelope.inner_size,
            route_id=envelope.route_id,
            hops=envelope.hops + 1,
            max_hops=envelope.max_hops,
        )
        frame = Frame(
            kind=self.FRAME_KIND,
            src=node.node_id,
            dst=next_hop.node_id,
            size_bytes=forwarded.wire_size(),
            payload=forwarded,
        )

        def on_done(success: bool) -> None:
            if not success:
                self._try_candidates(node, envelope, candidates, index + 1)

        node.send(frame, on_done)

    def _deliver(self, node: SensorNode, envelope: GeoEnvelope) -> None:
        self.delivered += 1
        self.tracer.emit(
            "geo-delivered",
            node.sim.now,
            at=node.node_id,
            route=envelope.route_id,
            hops=envelope.hops,
            inner=envelope.inner_kind,
        )
        node.handle_local(envelope.inner_kind, envelope.inner_payload, envelope.inner_size)

    def _drop(self, node: SensorNode, envelope: GeoEnvelope, reason: str) -> None:
        self.dropped += 1
        self.tracer.emit(
            "geo-dropped",
            node.sim.now,
            at=node.node_id,
            route=envelope.route_id,
            reason=reason,
            inner=envelope.inner_kind,
        )
