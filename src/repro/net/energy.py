"""Radio energy accounting.

The paper measures average power per *sleeping* node (Figure 8) using the
Cabletron 802.11 card numbers from the Span paper: transmit 1400 mW, receive
1000 mW, idle 830 mW, sleep 130 mW.  The meter integrates power over the
time spent in each radio state; state changes are pushed by the radio, and
totals are read lazily so steady states cost nothing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from ..sim.kernel import Simulator


class RadioState(enum.Enum):
    """Power states of a node radio."""

    TX = "tx"
    RX = "rx"
    IDLE = "idle"
    SLEEP = "sleep"


@dataclass(frozen=True)
class PowerModel:
    """Power draw in watts for each radio state."""

    tx_w: float = 1.400
    rx_w: float = 1.000
    idle_w: float = 0.830
    sleep_w: float = 0.130

    def watts(self, state: RadioState) -> float:
        """Draw for ``state`` in watts."""
        if state is RadioState.TX:
            return self.tx_w
        if state is RadioState.RX:
            return self.rx_w
        if state is RadioState.IDLE:
            return self.idle_w
        return self.sleep_w


#: The measurement the paper cites (Chen et al., MobiCom'01 / Cabletron card).
PAPER_POWER_MODEL = PowerModel()


class EnergyMeter:
    """Integrates radio power draw over simulated time for one node."""

    def __init__(self, sim: Simulator, model: PowerModel = PAPER_POWER_MODEL) -> None:
        self.sim = sim
        self.model = model
        self._state = RadioState.IDLE
        self._state_since = sim.now
        self._joules = 0.0
        self._state_seconds: Dict[RadioState, float] = {s: 0.0 for s in RadioState}

    def on_state_change(self, new_state: RadioState) -> None:
        """Close the current state interval and open a new one."""
        self._settle()
        self._state = new_state

    def _settle(self) -> None:
        now = self.sim.now
        elapsed = now - self._state_since
        if elapsed > 0:
            self._joules += elapsed * self.model.watts(self._state)
            self._state_seconds[self._state] += elapsed
        self._state_since = now

    # ------------------------------------------------------------------
    # Readouts
    # ------------------------------------------------------------------
    def total_joules(self) -> float:
        """Energy consumed from t=0 through now."""
        self._settle()
        return self._joules

    def seconds_in(self, state: RadioState) -> float:
        """Cumulative seconds spent in ``state``."""
        self._settle()
        return self._state_seconds[state]

    def average_power_w(self) -> float:
        """Mean draw in watts from the meter's creation through now."""
        self._settle()
        total_time = sum(self._state_seconds.values())
        if total_time <= 0:
            return self.model.watts(self._state)
        return self._joules / total_time
