"""Radio energy accounting.

The paper measures average power per *sleeping* node (Figure 8) using the
Cabletron 802.11 card numbers from the Span paper: transmit 1400 mW, receive
1000 mW, idle 830 mW, sleep 130 mW.  The meter integrates power over the
time spent in each radio state; state changes are pushed by the radio, and
totals are read lazily so steady states cost nothing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..sim.kernel import Simulator


class RadioState(enum.Enum):
    """Power states of a node radio."""

    TX = "tx"
    RX = "rx"
    IDLE = "idle"
    SLEEP = "sleep"


@dataclass(frozen=True)
class PowerModel:
    """Power draw in watts for each radio state."""

    tx_w: float = 1.400
    rx_w: float = 1.000
    idle_w: float = 0.830
    sleep_w: float = 0.130

    def watts(self, state: RadioState) -> float:
        """Draw for ``state`` in watts."""
        if state is RadioState.TX:
            return self.tx_w
        if state is RadioState.RX:
            return self.rx_w
        if state is RadioState.IDLE:
            return self.idle_w
        return self.sleep_w


#: The measurement the paper cites (Chen et al., MobiCom'01 / Cabletron card).
PAPER_POWER_MODEL = PowerModel()


class EnergyMeter:
    """Integrates radio power draw over simulated time for one node.

    State changes fire on every radio transition — roughly twice per
    reception — so the meter keeps the current state's draw as a scalar and
    accumulates per-state seconds in four plain floats (no enum hashing or
    dict lookup on the hot path).

    The hottest transitions never call this class at all: the channel's
    batch transmit/finish loops integrate IDLE<->RX directly against the
    meter's fields for a whole receiver cohort per frame, and
    ``Radio.set_state`` inlines the general transition — see
    ``on_state_change`` for the keep-in-sync contract.
    """

    __slots__ = (
        "sim", "model", "_state", "_state_w", "_state_since", "_joules",
        "_tx_s", "_rx_s", "_idle_s", "_sleep_s",
    )

    def __init__(self, sim: Simulator, model: PowerModel = PAPER_POWER_MODEL) -> None:
        self.sim = sim
        self.model = model
        self._state = RadioState.IDLE
        self._state_w = model.watts(RadioState.IDLE)
        self._state_since = sim.now
        self._joules = 0.0
        self._tx_s = 0.0
        self._rx_s = 0.0
        self._idle_s = 0.0
        self._sleep_s = 0.0

    def on_state_change(self, new_state: RadioState) -> None:
        """Close the current state interval and open a new one.

        NOTE: :meth:`repro.net.radio.Radio.set_state` inlines this exact
        logic on its hot path, and ``Channel.transmit`` /
        ``Channel._finish_transmission`` inline the IDLE->RX / RX->IDLE
        special cases inside their per-frame batch loops — keep all four
        in sync.
        """
        # _settle and the watts lookup are inlined: this fires on every
        # radio transition and the two extra calls are measurable.
        now = self.sim.now
        elapsed = now - self._state_since
        if elapsed > 0:
            self._joules += elapsed * self._state_w
            state = self._state
            if state is RadioState.IDLE:
                self._idle_s += elapsed
            elif state is RadioState.SLEEP:
                self._sleep_s += elapsed
            elif state is RadioState.RX:
                self._rx_s += elapsed
            else:
                self._tx_s += elapsed
            self._state_since = now
        self._state = new_state
        model = self.model
        if new_state is RadioState.IDLE:
            self._state_w = model.idle_w
        elif new_state is RadioState.SLEEP:
            self._state_w = model.sleep_w
        elif new_state is RadioState.RX:
            self._state_w = model.rx_w
        else:
            self._state_w = model.tx_w

    def _settle(self) -> None:
        now = self.sim.now
        elapsed = now - self._state_since
        if elapsed > 0:
            self._joules += elapsed * self._state_w
            state = self._state
            if state is RadioState.IDLE:
                self._idle_s += elapsed
            elif state is RadioState.SLEEP:
                self._sleep_s += elapsed
            elif state is RadioState.RX:
                self._rx_s += elapsed
            else:
                self._tx_s += elapsed
            self._state_since = now
        elif elapsed != 0.0:  # pragma: no cover - clock never runs backwards
            self._state_since = now

    # ------------------------------------------------------------------
    # Readouts
    # ------------------------------------------------------------------
    def total_joules(self) -> float:
        """Energy consumed from t=0 through now."""
        self._settle()
        return self._joules

    def seconds_in(self, state: RadioState) -> float:
        """Cumulative seconds spent in ``state``."""
        self._settle()
        if state is RadioState.TX:
            return self._tx_s
        if state is RadioState.RX:
            return self._rx_s
        if state is RadioState.IDLE:
            return self._idle_s
        return self._sleep_s

    def average_power_w(self) -> float:
        """Mean draw in watts from the meter's creation through now."""
        self._settle()
        total_time = self._tx_s + self._rx_s + self._idle_s + self._sleep_s
        if total_time <= 0:
            return self._state_w
        return self._joules / total_time
