"""Synthetic physical fields sampled by the sensors.

The paper's queries are over generic sensor data ("a temperature map within
one mile").  We model the observed phenomenon as a scalar field over space
and time so queries aggregate something meaningful in the examples (a
spreading fire front, terrain hazard levels), and so tests can assert that
an aggregate equals the known ground truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..geometry.vec import Vec2


class ScalarField:
    """Interface: a real-valued function of position and time."""

    def value(self, position: Vec2, time: float) -> float:
        """Field value at ``position`` and ``time``."""
        raise NotImplementedError


@dataclass(frozen=True)
class UniformField(ScalarField):
    """A constant field — the simplest thing a test can assert against."""

    level: float = 20.0

    def value(self, position: Vec2, time: float) -> float:
        return self.level


@dataclass(frozen=True)
class GradientField(ScalarField):
    """A planar gradient: ``base + slope . position`` (static)."""

    base: float = 0.0
    slope_x: float = 0.1
    slope_y: float = 0.0

    def value(self, position: Vec2, time: float) -> float:
        return self.base + self.slope_x * position.x + self.slope_y * position.y


@dataclass(frozen=True)
class Hotspot:
    """One Gaussian bump, optionally drifting and growing over time."""

    center: Vec2
    amplitude: float
    sigma: float
    drift: Vec2 = Vec2(0.0, 0.0)
    growth_per_s: float = 0.0

    def value(self, position: Vec2, time: float) -> float:
        center = self.center + self.drift * time
        amplitude = self.amplitude * (1.0 + self.growth_per_s * time)
        d_sq = center.distance_sq_to(position)
        return amplitude * math.exp(-d_sq / (2.0 * self.sigma * self.sigma))


@dataclass(frozen=True)
class HotspotField(ScalarField):
    """Sum of Gaussian hotspots over a baseline — e.g. fire fronts.

    The firefighter example uses this with growing, drifting hotspots so the
    MAX-aggregate query visibly tracks the nearest front.
    """

    base: float = 20.0
    hotspots: Sequence[Hotspot] = ()

    def value(self, position: Vec2, time: float) -> float:
        total = self.base
        for spot in self.hotspots:
            total += spot.value(position, time)
        return total


def fire_scenario_field(region_side: float) -> HotspotField:
    """A ready-made wildfire-like field for examples: two growing fronts."""
    return HotspotField(
        base=22.0,
        hotspots=(
            Hotspot(
                center=Vec2(region_side * 0.75, region_side * 0.70),
                amplitude=300.0,
                sigma=region_side * 0.12,
                drift=Vec2(-0.15, -0.10),
                growth_per_s=0.002,
            ),
            Hotspot(
                center=Vec2(region_side * 0.20, region_side * 0.85),
                amplitude=180.0,
                sigma=region_side * 0.08,
                drift=Vec2(0.05, -0.20),
                growth_per_s=0.001,
            ),
        ),
    )
