"""Network construction: node placement, neighbour discovery, backbone wiring.

``build_network`` assembles a full sensor field from a :class:`NetworkConfig`
— the paper's defaults are 200 nodes uniform in a 450 m x 450 m square,
``Rc = 105 m``, ``Rs = 50 m``, 2 Mb/s — then a power-management protocol
from :mod:`repro.power` partitions nodes into the always-on backbone and the
duty-cycled sleepers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Sequence, Set

from ..geometry.grid import SpatialGrid
from ..geometry.shapes import Circle, Rect
from ..geometry.vec import Vec2
from ..sim.kernel import Simulator
from ..sim.rng import RandomStreams
from ..sim.trace import Tracer
from .channel import Channel
from .energy import PAPER_POWER_MODEL, PowerModel
from .field import ScalarField, UniformField
from .mac import MacConfig
from .node import ROLE_ACTIVE, SensorNode
from .psm import PsmConfig


@dataclass(frozen=True)
class NetworkConfig:
    """Static parameters of the sensor field (paper Section 6.1 defaults)."""

    n_nodes: int = 200
    region: Rect = field(default_factory=lambda: Rect.square(450.0))
    comm_range_m: float = 105.0
    sensing_range_m: float = 50.0
    bitrate_bps: float = 2e6
    sleep_period_s: float = 9.0
    active_window_s: float = 0.1
    #: phase of the shared beacon schedule relative to t=0; experiments draw
    #: this randomly so query start and wake-up windows are not aligned
    psm_offset_s: float = 0.0
    mac: MacConfig = field(default_factory=MacConfig)
    power_model: PowerModel = PAPER_POWER_MODEL
    sensor_noise_std: float = 0.0

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError("n_nodes must be > 0")
        if self.comm_range_m <= 0 or self.sensing_range_m <= 0:
            raise ValueError("ranges must be > 0")

    @property
    def psm(self) -> PsmConfig:
        """The PSM schedule implied by the sleep period / active window."""
        return PsmConfig(
            beacon_interval_s=self.sleep_period_s,
            active_window_s=self.active_window_s,
            offset_s=self.psm_offset_s % self.sleep_period_s,
        )

    def with_sleep_period(self, sleep_period_s: float) -> "NetworkConfig":
        """Copy with a different sleep period (the Fig. 4/6/8 sweep knob)."""
        return replace(self, sleep_period_s=sleep_period_s)


class Network:
    """A built sensor field: nodes, channel, spatial index, role partition."""

    def __init__(
        self,
        sim: Simulator,
        config: NetworkConfig,
        channel: Channel,
        nodes: List[SensorNode],
        tracer: Tracer,
    ) -> None:
        self.sim = sim
        self.config = config
        self.channel = channel
        self.nodes = nodes
        self.tracer = tracer
        self.grid: SpatialGrid[SensorNode] = SpatialGrid(cell_size=config.comm_range_m)
        for node in nodes:
            self.grid.insert(node, node.position)
        self._compute_neighbors()
        self._backbone_applied = False

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def _compute_neighbors(self) -> None:
        rc = self.config.comm_range_m
        for node in self.nodes:
            node.neighbors = self.grid.query_disk_excluding(node.position, rc, node)

    def node_by_id(self, node_id: int) -> SensorNode:
        """Look up a node by id (ids are dense, starting at 0)."""
        node = self.nodes[node_id]
        if node.node_id != node_id:  # defensive: ids must stay positional
            raise KeyError(f"node id {node_id} not positional")
        return node

    def nodes_in_disk(self, center: Vec2, radius: float) -> List[SensorNode]:
        """All sensor nodes within ``radius`` of ``center``."""
        return self.grid.query_disk(center, radius)

    def nodes_in_area(self, area: Circle) -> List[SensorNode]:
        """All sensor nodes inside a query area."""
        return self.nodes_in_disk(area.center, area.radius)

    def active_nodes_in_disk(self, center: Vec2, radius: float) -> List[SensorNode]:
        """Backbone nodes within ``radius`` of ``center``."""
        return [n for n in self.nodes_in_disk(center, radius) if n.is_active]

    def nearest_active_node(self, point: Vec2) -> SensorNode:
        """The backbone node closest to ``point``.

        Raises:
            ValueError: if no backbone exists (power management not applied).
        """
        best: Optional[SensorNode] = None
        best_d = float("inf")
        for node in self.nodes:
            if not node.is_active:
                continue
            d = node.position.distance_sq_to(point)
            if d < best_d:
                best, best_d = node, d
        if best is None:
            raise ValueError("network has no active nodes")
        return best

    @property
    def active_nodes(self) -> List[SensorNode]:
        """The always-on backbone."""
        return [n for n in self.nodes if n.is_active]

    @property
    def sleeper_nodes(self) -> List[SensorNode]:
        """The duty-cycled majority."""
        return [n for n in self.nodes if not n.is_active]

    # ------------------------------------------------------------------
    # Backbone
    # ------------------------------------------------------------------
    def apply_backbone(self, active_ids: Iterable[int]) -> None:
        """Partition nodes into backbone and sleepers and start schedules.

        Called exactly once per run, with the id set chosen by a
        power-management protocol.
        """
        if self._backbone_applied:
            raise RuntimeError("backbone already applied")
        self._backbone_applied = True
        active: Set[int] = set(active_ids)
        psm = self.config.psm
        for node in self.nodes:
            if node.node_id in active:
                node.role = ROLE_ACTIVE
            else:
                node.make_sleeper(psm)
        for node in self.nodes:
            node.active_neighbors = [n for n in node.neighbors if n.is_active]
        self.tracer.emit(
            "backbone",
            self.sim.now,
            active=len(active),
            total=len(self.nodes),
        )

    def is_backbone_connected(self) -> bool:
        """BFS connectivity check over the active subgraph."""
        active = self.active_nodes
        if not active:
            return False
        seen = {active[0].node_id}
        frontier = [active[0]]
        while frontier:
            node = frontier.pop()
            for nb in node.active_neighbors:
                if nb.node_id not in seen:
                    seen.add(nb.node_id)
                    frontier.append(nb)
        return len(seen) == len(active)


def uniform_positions(
    config: NetworkConfig, streams: RandomStreams
) -> List[Vec2]:
    """Uniform-random node placement over the region (stream: ``topology``)."""
    rng = streams.stream("topology")
    region = config.region
    xs = rng.uniform(region.x_min, region.x_max, size=config.n_nodes)
    ys = rng.uniform(region.y_min, region.y_max, size=config.n_nodes)
    return [Vec2(float(x), float(y)) for x, y in zip(xs, ys)]


def build_network(
    sim: Simulator,
    config: NetworkConfig,
    streams: RandomStreams,
    tracer: Optional[Tracer] = None,
    field_model: Optional[ScalarField] = None,
    positions: Optional[Sequence[Vec2]] = None,
) -> Network:
    """Construct the sensor field: channel, nodes, neighbour lists.

    Args:
        sim: event kernel for this run.
        config: field parameters.
        streams: root RNG family; uses ``topology`` and per-node ``mac``
            streams.
        tracer: shared tracer (a fresh silent one if omitted).
        field_model: physical field sensors sample (uniform if omitted).
        positions: explicit node positions (overrides random placement);
            useful for deterministic tests.

    Returns:
        A :class:`Network` with roles not yet assigned — call a power
        protocol and then :meth:`Network.apply_backbone`.
    """
    tracer = tracer if tracer is not None else Tracer()
    channel = Channel(
        sim,
        comm_range=config.comm_range_m,
        bitrate_bps=config.bitrate_bps,
        tracer=tracer,
    )
    if positions is None:
        positions = uniform_positions(config, streams)
    elif len(positions) != config.n_nodes:
        raise ValueError(
            f"{len(positions)} positions supplied for {config.n_nodes} nodes"
        )
    the_field = field_model or UniformField()
    nodes: List[SensorNode] = []
    for node_id, position in enumerate(positions):
        node = SensorNode(
            node_id=node_id,
            position=position,
            sim=sim,
            channel=channel,
            rng=streams.stream(f"mac-{node_id}"),
            mac_config=config.mac,
            power_model=config.power_model,
            field=the_field,
            sensor_noise_std=config.sensor_noise_std,
            tracer=tracer,
        )
        channel.register_static(node)
        nodes.append(node)
    return Network(sim, config, channel, nodes, tracer)
