"""Declarative scenarios: named, JSON-loadable service workloads.

A :class:`ScenarioSpec` is a plain-data description of one service run —
world (mode/seed/duration/network), admission policy, and a list of
request templates — that round-trips through ``dict``/JSON, so workloads
can live in version control, ship in bug reports, and run from the CLI:

    repro scenario heterogeneous-mix
    repro scenario --file my_workload.json

Request templates are dicts mirroring :class:`~repro.api.requests.
QueryRequest` (aggregations by name), plus two expansion keys:
``count`` clones a template N times and ``spacing_s`` staggers the
clones' start times.  An optional ``path`` dict gives the user a
deterministic motion (``{"kind": "patrol", "waypoints": [[x, y], ...],
"speed": 4.0, "loops": 4}``); without one the service synthesises the
paper's random-direction walk.

Five scenarios are built in: ``paper-default`` (the Section 6.1 single
user), ``patrol-fleet`` (6 robots on rectangular beats), ``rush-hour-
burst`` (a simultaneous 12-user burst tamed by server-side phase
assignment), ``heterogeneous-mix`` (8 users with mixed periods, radii,
aggregations and freshness bounds — the ROADMAP's heterogeneous-workload
item), and ``cluster_scale_64users`` (64 users on 4 regional shards —
the scale-out scenario ``make bench-cluster`` times).

A spec may also ask for the sharded backend: ``shards: 4`` partitions
the field into regional worlds (``partitioner`` picks the scheme) and
``workers: 4`` runs the batch path across worker processes; ``shards:
1`` — the default — is the classic single world.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Dict, List, Optional, Tuple

from ..core.query import Aggregation
from ..experiments.config import ExperimentConfig
from ..faults.plan import FaultPlan
from ..geometry.vec import Vec2
from ..mobility.models import patrol_path
from ..net.network import NetworkConfig
from ..workload.engine import WorkloadResult
from .admission import AdmissionPolicy, make_admission_policy
from .backend import QueryBackend
from .requests import ACCURACY_LEVELS, QueryRequest
from .service import MobiQueryService, SessionHandle

#: request-template keys that are not QueryRequest fields
_EXPANSION_KEYS = ("count", "spacing_s", "path", "aggregation")

#: every key a request template may carry (QueryRequest fields + expansion)
_REQUEST_KEYS = frozenset(
    f.name for f in dataclass_fields(QueryRequest)
) | set(_EXPANSION_KEYS)

#: every key one *expanded* request payload may carry (no count/spacing)
_PAYLOAD_KEYS = _REQUEST_KEYS - {"count", "spacing_s"}

#: every key the ``network`` override dict may carry
_NETWORK_KEYS = frozenset(f.name for f in dataclass_fields(NetworkConfig))


def _reject_unknown_keys(data: Dict, known: frozenset, what: str) -> None:
    """One-line rejection naming the first bad key (strict spec loading)."""
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"unknown {what} key {unknown[0]!r}; expected one of "
            f"{sorted(known)}"
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One named workload, fully described by plain data."""

    name: str
    description: str = ""
    mode: str = "jit"
    seed: int = 1
    duration_s: float = 120.0
    #: NetworkConfig field overrides (e.g. {"sleep_period_s": 9.0})
    network: Dict = field(default_factory=dict)
    #: admission policy dict (see :func:`make_admission_policy`)
    admission: Dict = field(default_factory=dict)
    #: request templates (see module docstring)
    requests: Tuple[Dict, ...] = ()
    #: declarative fault plan (see :class:`~repro.faults.plan.FaultPlan`);
    #: an empty dict — the default — injects nothing and is bit-identical
    #: to a pre-fault-plane run
    faults: Dict = field(default_factory=dict)
    #: regional shards (1 = one world, the classic MobiQueryService)
    shards: int = 1
    #: worker processes for the cluster batch path (0 = in-process)
    workers: int = 0
    #: spatial partitioner registry name (see repro.cluster.PARTITIONERS)
    partitioner: str = "balanced-kd"
    # -- declarative serve-daemon posture (ROADMAP item 2) ------------
    # CLI flags still override: a flag given on ``repro serve`` beats
    # the spec; the spec beats the built-in defaults.
    #: edge admission: sustained sessions/s (0 = edge disabled)
    edge_rate: float = 0.0
    #: edge admission: token-bucket burst depth (0 = edge disabled)
    edge_burst: float = 0.0
    #: edge admission: concurrent live-session cap (0 = unlimited)
    max_live_sessions: int = 0
    #: WAL group-commit: flush every N records (1 = every record)
    wal_flush: int = 8

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        if self.duration_s <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration_s:g}")
        for knob, value in (
            ("shards", self.shards),
            ("workers", self.workers),
            ("max_live_sessions", self.max_live_sessions),
            ("wal_flush", self.wal_flush),
        ):
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(
                    f"{knob} must be an integer, got {value!r}"
                )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        for knob, value in (
            ("edge_rate", self.edge_rate),
            ("edge_burst", self.edge_burst),
        ):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"{knob} must be a number, got {value!r}")
            if value < 0:
                raise ValueError(f"{knob} must be >= 0, got {value:g}")
        if self.max_live_sessions < 0:
            raise ValueError(
                f"max_live_sessions must be >= 0, got {self.max_live_sessions}"
            )
        if self.wal_flush < 1:
            raise ValueError(f"wal_flush must be >= 1, got {self.wal_flush}")
        from ..cluster.partition import PARTITIONERS  # lazy: avoid cycle

        if self.partitioner not in PARTITIONERS:
            raise ValueError(
                f"unknown partitioner {self.partitioner!r}; expected one of "
                f"{sorted(PARTITIONERS)}"
            )
        # Strict template validation: a typo'd key fails at load time with
        # one clear sentence, not as a TypeError deep in request expansion.
        for template in self.requests:
            _reject_unknown_keys(template, _REQUEST_KEYS, "request-template")
        _reject_unknown_keys(self.network, _NETWORK_KEYS, "network")
        # Same strictness for the fault plan: FaultPlan.from_dict names the
        # first unknown key at every nesting level.
        FaultPlan.from_dict(self.faults)

    @staticmethod
    def from_dict(data: Dict) -> "ScenarioSpec":
        """Build a spec from its plain-dict form (inverse of :meth:`to_dict`)."""
        known = {
            "name",
            "description",
            "mode",
            "seed",
            "duration_s",
            "network",
            "admission",
            "requests",
            "faults",
            "shards",
            "workers",
            "partitioner",
            "edge_rate",
            "edge_burst",
            "max_live_sessions",
            "wal_flush",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown scenario keys {sorted(unknown)}; expected {sorted(known)}"
            )
        payload = dict(data)
        payload["requests"] = tuple(dict(r) for r in payload.get("requests", ()))
        payload["network"] = dict(payload.get("network", {}))
        payload["admission"] = dict(payload.get("admission", {}))
        payload["faults"] = dict(payload.get("faults", {}))
        return ScenarioSpec(**payload)

    def to_dict(self) -> Dict:
        """The JSON-ready plain-dict form."""
        return {
            "name": self.name,
            "description": self.description,
            "mode": self.mode,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "network": dict(self.network),
            "admission": dict(self.admission),
            "requests": [dict(r) for r in self.requests],
            "faults": dict(self.faults),
            "shards": self.shards,
            "workers": self.workers,
            "partitioner": self.partitioner,
            "edge_rate": self.edge_rate,
            "edge_burst": self.edge_burst,
            "max_live_sessions": self.max_live_sessions,
            "wal_flush": self.wal_flush,
        }

    def with_overrides(
        self,
        duration_s: Optional[float] = None,
        seed: Optional[int] = None,
        shards: Optional[int] = None,
        workers: Optional[int] = None,
        partitioner: Optional[str] = None,
        faults: Optional[Dict] = None,
    ) -> "ScenarioSpec":
        """The same scenario at a different scale, seed or shard layout."""
        payload = self.to_dict()
        if duration_s is not None:
            payload["duration_s"] = duration_s
        if seed is not None:
            payload["seed"] = seed
        if shards is not None:
            payload["shards"] = shards
        if workers is not None:
            payload["workers"] = workers
        if partitioner is not None:
            payload["partitioner"] = partitioner
        if faults is not None:
            payload["faults"] = faults
        return ScenarioSpec.from_dict(payload)

    def with_accuracy(self, accuracy: str) -> "ScenarioSpec":
        """The same workload with every request at ``accuracy``.

        This is how a scenario's exact twin is built (and how the CLI's
        ``--accuracy`` / the sweep's ``--accuracies`` axis rewrite a
        cell): only the ``accuracy`` key of each template changes, so
        paths, seeds and arrival phases stay identical.
        """
        if accuracy not in ACCURACY_LEVELS:
            raise ValueError(
                f"unknown accuracy {accuracy!r}; expected one of "
                f"{ACCURACY_LEVELS}"
            )
        payload = self.to_dict()
        for template in payload["requests"]:
            template["accuracy"] = accuracy
        return ScenarioSpec.from_dict(payload)

    def fault_plan(self) -> FaultPlan:
        """The validated :class:`FaultPlan` this scenario injects."""
        return FaultPlan.from_dict(self.faults)


def load_scenario_file(path: str) -> ScenarioSpec:
    """Load a scenario from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return ScenarioSpec.from_dict(json.load(fh))


# ----------------------------------------------------------------------
# Template expansion
# ----------------------------------------------------------------------
def _build_path(path_spec: Dict):
    kind = path_spec.get("kind", "random")
    if kind == "random":
        return None  # the service synthesises the paper's walk
    if kind == "patrol":
        waypoints = [Vec2(float(x), float(y)) for x, y in path_spec["waypoints"]]
        return patrol_path(
            waypoints,
            speed=float(path_spec.get("speed", 4.0)),
            start_time=0.0,
            loops=int(path_spec.get("loops", 1)),
        )
    raise ValueError(f"unknown path kind {kind!r}; expected 'random' or 'patrol'")


def request_from_payload(payload: Dict) -> QueryRequest:
    """One concrete :class:`QueryRequest` from its JSON-able dict form.

    The payload is a request template *after* expansion (no ``count`` /
    ``spacing_s``): ``aggregation`` may be a name string, ``path`` a path
    dict (``{"kind": "patrol", ...}``); every other key maps straight to
    a :class:`QueryRequest` field.  Shared by :func:`build_requests` and
    the serve daemon's wire codec, so an over-the-wire submission builds
    exactly the request the in-process expansion would.
    """
    _reject_unknown_keys(payload, _PAYLOAD_KEYS, "request-payload")
    kwargs = dict(payload)
    aggregation = kwargs.get("aggregation")
    if aggregation is None:
        kwargs.pop("aggregation", None)
    elif not isinstance(aggregation, Aggregation):
        kwargs["aggregation"] = Aggregation(str(aggregation).lower())
    path_spec = kwargs.pop("path", None)
    if path_spec is not None:
        kwargs["path"] = _build_path(path_spec)
    return QueryRequest(**kwargs)


def build_request_payloads(spec: ScenarioSpec) -> List[Dict]:
    """Expand the templates into JSON-able per-user request payloads.

    The same expansion :func:`build_requests` performs — ``count``
    cloning, ``spacing_s`` staggering, start clamping so a scaled-down
    scenario keeps one serviceable period per user — but stopping at
    plain data: one payload dict per user, in template order.  This is
    what ``repro slam`` replays over the wire against a live daemon.
    """
    payloads: List[Dict] = []
    for template in spec.requests:
        count = int(template.get("count", 1))
        spacing = float(template.get("spacing_s", 0.0))
        if count < 1:
            raise ValueError(f"request count must be >= 1, got {count}")
        base = {
            k: v for k, v in template.items() if k not in ("count", "spacing_s")
        }
        period = float(base.get("period_s", 2.0))
        latest_start = spec.duration_s - period
        for clone in range(count):
            payload = dict(base)
            start = float(base.get("start_s", 0.0)) + clone * spacing
            payload["start_s"] = min(start, max(0.0, latest_start))
            payloads.append(payload)
    return payloads


def build_requests(spec: ScenarioSpec) -> List[QueryRequest]:
    """Expand a scenario's request templates into concrete requests.

    Scaling a scenario down (``with_overrides``) clamps each request's
    start so every user keeps at least one serviceable period — quick CLI
    runs of a long scenario stay valid instead of erroring out.
    """
    return [request_from_payload(p) for p in build_request_payloads(spec)]


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
@dataclass
class ScenarioResult:
    """One scenario run: per-user scores plus service-level counters."""

    scenario: ScenarioSpec
    workload: WorkloadResult
    handles: List[SessionHandle]
    events_executed: int
    frames_sent: int
    frames_collided: int
    frames_delivered: int
    backbone_size: int
    #: independent worlds that served the run (1 = single service)
    shards: int = 1

    @property
    def admitted(self) -> int:
        return sum(1 for h in self.handles if h.accepted)

    @property
    def rejected(self) -> int:
        return sum(1 for h in self.handles if not h.accepted)

    @property
    def mean_success(self) -> float:
        return self.workload.mean_success_ratio()

    @property
    def min_success(self) -> float:
        return self.workload.min_success_ratio()


def _scenario_config(spec: ScenarioSpec) -> ExperimentConfig:
    return ExperimentConfig(
        mode=spec.mode,
        seed=spec.seed,
        duration_s=spec.duration_s,
        network=NetworkConfig(**spec.network),
    )


def build_service(
    spec: ScenarioSpec, admission: Optional[AdmissionPolicy] = None
) -> MobiQueryService:
    """The single-world service for a scenario (ignores ``shards``).

    ``admission`` overrides the spec's configured policy — the replay
    path installs a :class:`~repro.cluster.transport.ReplayAdmissionPolicy`
    here to reproduce a recorded run's verdicts verbatim.
    """
    return MobiQueryService(
        _scenario_config(spec),
        admission=(
            admission
            if admission is not None
            else make_admission_policy(spec.admission)
        ),
        faults=spec.fault_plan(),
    )


def build_backend(
    spec: ScenarioSpec, admission: Optional[AdmissionPolicy] = None
) -> QueryBackend:
    """The backend a scenario asks for: one world, or a regional cluster.

    ``shards: 1`` (the default) builds the classic single-world
    :class:`MobiQueryService` — ``workers``/``partitioner`` only apply to
    a cluster and are ignored for one world; ``shards >= 2`` builds a
    :class:`~repro.cluster.service.ClusterService` with the spec's
    partitioner and worker count.  Either way the caller only sees the
    :class:`QueryBackend` surface.  ``admission`` overrides the spec's
    configured policy (see :func:`build_service`).
    """
    if spec.shards <= 1:
        return build_service(spec, admission=admission)
    from ..cluster.service import ClusterService  # lazy: avoid cycle

    return ClusterService(
        _scenario_config(spec),
        shards=spec.shards,
        admission=(
            admission
            if admission is not None
            else make_admission_policy(spec.admission)
        ),
        partitioner=spec.partitioner,
        workers=spec.workers,
        faults=spec.fault_plan(),
    )


def run_scenario(
    spec: ScenarioSpec,
    duration_s: Optional[float] = None,
    seed: Optional[int] = None,
    shards: Optional[int] = None,
    workers: Optional[int] = None,
    backend: Optional[QueryBackend] = None,
    accuracy: Optional[str] = None,
) -> ScenarioResult:
    """Run one scenario end to end and score every admitted session.

    ``backend`` injects a pre-built backend (the cluster benchmarks use
    this to time an explicit ``ClusterService(shards=1)`` against the
    default single-world path); otherwise one is built from the spec.
    ``accuracy`` rewrites every request template (``repro scenario
    --accuracy`` — how a scenario's exact twin runs).
    """
    spec = spec.with_overrides(
        duration_s=duration_s, seed=seed, shards=shards, workers=workers
    )
    if accuracy is not None:
        spec = spec.with_accuracy(accuracy)
    if backend is None:
        backend = build_backend(spec)
    handles = [backend.submit(request) for request in build_requests(spec)]
    workload = backend.close()
    stats = backend.stats()
    return ScenarioResult(
        scenario=spec,
        workload=workload,
        handles=handles,
        events_executed=stats.events_executed,
        frames_sent=stats.frames_sent,
        frames_collided=stats.frames_collided,
        frames_delivered=stats.frames_delivered,
        backbone_size=stats.backbone_size,
        shards=stats.shards,
    )


# ----------------------------------------------------------------------
# The built-in registry
# ----------------------------------------------------------------------
def _patrol_beat(index: int) -> List[List[float]]:
    """Rectangular beats tiling the field, one per robot (wrap after 6)."""
    col, row = index % 3, (index // 3) % 2
    x0, y0 = 40.0 + col * 130.0, 50.0 + row * 190.0
    w, h = 110.0, 150.0
    return [[x0, y0], [x0 + w, y0], [x0 + w, y0 + h], [x0, y0 + h], [x0, y0]]


def _uav_sweep(index: int) -> List[List[float]]:
    """Lawnmower sweep over one horizontal strip of the field, per UAV.

    Each of the 4 UAVs owns a 112.5 m strip and mows it in two long
    passes — the fast, ground-covering motion where per-period tree
    placement pays full price for areas the vehicle has already left.
    """
    y0 = 30.0 + (index % 4) * 112.5
    return [
        [25.0, y0],
        [425.0, y0],
        [425.0, y0 + 55.0],
        [25.0, y0 + 55.0],
    ]


_HETERO_REQUESTS = (
    # A deliberate mix: periods 1.5-4 s, radii 40-120 m, four aggregation
    # functions, freshness at or below each period — per-user parameters
    # the single shared QueryParams of the experiment era could not express.
    {"period_s": 2.0, "radius_m": 60.0, "freshness_s": 1.0, "aggregation": "avg", "start_s": 0.0},
    {"period_s": 1.5, "radius_m": 40.0, "freshness_s": 0.75, "aggregation": "max", "start_s": 2.5},
    {"period_s": 3.0, "radius_m": 90.0, "freshness_s": 1.5, "aggregation": "min", "start_s": 5.0},
    {"period_s": 2.0, "radius_m": 75.0, "freshness_s": 0.8, "aggregation": "count", "start_s": 7.5},
    {"period_s": 4.0, "radius_m": 120.0, "freshness_s": 2.0, "aggregation": "avg", "start_s": 10.0},
    {"period_s": 1.5, "radius_m": 50.0, "freshness_s": 1.0, "aggregation": "avg", "start_s": 12.5},
    {"period_s": 2.5, "radius_m": 60.0, "freshness_s": 1.2, "aggregation": "sum", "start_s": 15.0},
    {"period_s": 3.0, "radius_m": 100.0, "freshness_s": 1.0, "aggregation": "max", "start_s": 17.5},
)

#: the built-in scenario registry (name -> plain-dict spec)
SCENARIOS: Dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            name="paper-default",
            description=(
                "The paper's Section 6.1 setting: one user, Rq=150 m, "
                "Tperiod=2 s, Tfresh=1 s, JIT prefetching."
            ),
            mode="jit",
            seed=1,
            duration_s=120.0,
            requests=(
                {"radius_m": 150.0, "period_s": 2.0, "freshness_s": 1.0},
            ),
        ),
        ScenarioSpec(
            name="patrol-fleet",
            description=(
                "6 patrol robots on rectangular beats sharing one backbone, "
                "dispatched one every 2.5 s (the workload-engine example, "
                "declaratively)."
            ),
            mode="jit",
            seed=11,
            duration_s=90.0,
            requests=tuple(
                {
                    "attribute": "hazard",
                    "radius_m": 60.0,
                    "period_s": 2.0,
                    "freshness_s": 1.0,
                    "start_s": robot * 2.5,
                    "path": {
                        "kind": "patrol",
                        "waypoints": _patrol_beat(robot),
                        "speed": 4.0,
                        "loops": 4,
                    },
                }
                for robot in range(6)
            ),
        ),
        ScenarioSpec(
            name="rush-hour-burst",
            description=(
                "12 users all arriving at once — the phase-locking worst "
                "case — with server-side phase assignment spreading their "
                "deadlines across 4 slots."
            ),
            mode="jit",
            seed=3,
            duration_s=120.0,
            admission={"policy": "phase-assign", "slots": 4},
            requests=(
                {
                    "radius_m": 60.0,
                    "period_s": 2.0,
                    "freshness_s": 1.0,
                    "count": 12,
                    "spacing_s": 0.0,
                },
            ),
        ),
        ScenarioSpec(
            name="heterogeneous-mix",
            description=(
                "8 users with mixed periods (1.5-4 s), radii (40-120 m), "
                "aggregations (avg/min/max/sum/count) and freshness bounds "
                "on one shared network — the heterogeneous workload the "
                "per-request API exists for."
            ),
            mode="jit",
            seed=5,
            duration_s=120.0,
            requests=_HETERO_REQUESTS,
        ),
        ScenarioSpec(
            name="blackout-recovery-16users",
            description=(
                "16 users ride out a 20 s region blackout at the field "
                "centre plus a transient radio-degradation window: the "
                "self-healing protocol re-elects crashed collectors, marks "
                "the unrecoverable periods degraded, and post-recovery "
                "success returns to the no-fault level (the benchmarks "
                "gate it within 5 pp)."
            ),
            mode="jit",
            seed=7,
            duration_s=90.0,
            faults={
                "blackouts": [
                    {
                        "x": 225.0,
                        "y": 225.0,
                        "radius_m": 100.0,
                        "at_s": 30.0,
                        "duration_s": 20.0,
                    }
                ],
                "degradations": [
                    {"at_s": 35.0, "duration_s": 5.0, "corruption_prob": 0.3}
                ],
            },
            requests=(
                {
                    "radius_m": 60.0,
                    "period_s": 2.5,
                    "freshness_s": 1.25,
                    "count": 16,
                    "spacing_s": 1.5,
                },
            ),
        ),
        ScenarioSpec(
            name="uav-survey",
            description=(
                "4 survey UAVs mow the field in fast lawnmower sweeps "
                "(12 m/s) under coarse accuracy: each period is answered "
                "from the multiresolution summary plane instead of "
                "placing collection trees the vehicle outruns — the "
                "accuracy/energy frontier scenario (run --accuracy exact "
                "for the exact twin)."
            ),
            mode="jit",
            seed=17,
            duration_s=60.0,
            # Summaries refresh on the beacon cycle; a 3 s duty cycle
            # keeps cached readings inside the sessions' freshness bound.
            network={"sleep_period_s": 3.0},
            requests=tuple(
                {
                    "attribute": "temperature",
                    "aggregation": "avg",
                    "radius_m": 70.0,
                    "period_s": 3.0,
                    "freshness_s": 3.0,
                    "start_s": uav * 1.5,
                    "accuracy": "coarse",
                    "path": {
                        "kind": "patrol",
                        "waypoints": _uav_sweep(uav),
                        "speed": 12.0,
                        "loops": 2,
                    },
                }
                for uav in range(4)
            ),
        ),
        ScenarioSpec(
            name="cluster_scale_64users",
            description=(
                "64 users spread over 4 regional shards (balanced-kd, "
                "worker processes when the machine has cores) — the "
                "scale-out scenario; run with --shards 1 to time the "
                "same fleet on one world."
            ),
            mode="jit",
            seed=1,
            duration_s=60.0,
            shards=4,
            workers=4,
            requests=(
                {
                    "radius_m": 60.0,
                    "period_s": 2.0,
                    "freshness_s": 1.0,
                    "count": 64,
                    "spacing_s": 0.875,
                },
            ),
        ),
    )
}


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a built-in scenario; raise with the catalogue on miss."""
    spec = SCENARIOS.get(name)
    if spec is None:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(SCENARIOS))}"
        )
    return spec


def list_scenarios() -> List[ScenarioSpec]:
    """All built-in scenarios in name order."""
    return [SCENARIOS[name] for name in sorted(SCENARIOS)]
