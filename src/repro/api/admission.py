"""Admission control for the query service.

The shared medium saturates: at 16-32 concurrent users the per-user
success ratio degrades and the *worst* user suffers most (collisions grow
superlinearly — see ``benchmarks/test_multiuser_scaling.py``).  An
:class:`AdmissionPolicy` decides, per submitted request, whether the
service takes the session at all and whether its start time is adjusted.
Three policies ship:

* :class:`AcceptAllPolicy` — the open service (and the legacy-experiment
  behaviour).
* :class:`PerAreaCapPolicy` — reject a session whose query area would
  overlap too many already-admitted live sessions: spatial load shedding
  that trades served-user count for worst-user quality.
* :class:`PhaseAssignPolicy` — accept, but offset ``start_s`` so
  deadlines spread across the period.  Simultaneous arrivals phase-lock
  every session's report burst and cost 10-20 pp of success ratio; the
  server picks the phase because only it sees the whole fleet.

Policies are pure deciders: they draw no randomness and schedule no
events, so a rejection provably leaves the kernel untouched (the only
rejection residue lives outside the kernel: a path the service had to
synthesise for the decision consumed mobility-stream draws).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from ..core.query import QuerySpec
from ..mobility.path import PiecewisePath

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .service import MobiQueryService


@dataclass(frozen=True)
class AdmissionDecision:
    """The policy's verdict on one request."""

    admitted: bool
    reason: str = ""
    #: added to the request's start_s (phase assignment); 0 = as asked
    start_offset_s: float = 0.0

    @staticmethod
    def accept(offset_s: float = 0.0) -> "AdmissionDecision":
        return AdmissionDecision(admitted=True, start_offset_s=offset_s)

    @staticmethod
    def reject(reason: str) -> "AdmissionDecision":
        return AdmissionDecision(admitted=False, reason=reason)


class AdmissionPolicy:
    """Base class: accept everything, override :meth:`decide`."""

    #: registry name (CLI / scenario specs)
    name = "accept-all"

    def decide(
        self,
        spec: QuerySpec,
        path: PiecewisePath,
        service: "MobiQueryService",
    ) -> AdmissionDecision:
        """Decide on a session described by ``spec`` moving along ``path``.

        Must not mutate the service, draw randomness, or schedule events —
        rejections leave the kernel bit-identical to never having asked.
        """
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human description (CLI output)."""
        return self.name


class AcceptAllPolicy(AdmissionPolicy):
    """Admit every request exactly as submitted."""

    name = "accept-all"

    def decide(self, spec, path, service) -> AdmissionDecision:
        return AdmissionDecision.accept()


class PerAreaCapPolicy(AdmissionPolicy):
    """Cap how many live sessions may overlap one query area.

    A new session is rejected when, at its start instant, at least
    ``max_overlapping`` already-admitted sessions have query areas
    intersecting the newcomer's (circle-overlap test on the bounding
    radii).  Sessions that ended or were cancelled do not count, so a
    rejected user who resubmits after the area drains is admitted.
    """

    name = "per-area-cap"

    def __init__(self, max_overlapping: int = 3) -> None:
        if max_overlapping < 1:
            raise ValueError(
                f"max_overlapping must be >= 1, got {max_overlapping}"
            )
        self.max_overlapping = max_overlapping

    def decide(self, spec, path, service) -> AdmissionDecision:
        t = spec.start_s
        center = path.position_at(t)
        overlapping = 0
        for other in service.live_session_specs(at=t):
            other_center = other.path.position_at(t)
            reach = spec.effective_radius_m + other.spec.effective_radius_m
            if center.distance_sq_to(other_center) <= reach * reach:
                overlapping += 1
                if overlapping >= self.max_overlapping:
                    return AdmissionDecision.reject(
                        f"area cap: {overlapping} live sessions already "
                        f"overlap this query area (cap {self.max_overlapping})"
                    )
        return AdmissionDecision.accept()

    def describe(self) -> str:
        return f"per-area-cap(max_overlapping={self.max_overlapping})"


class PhaseAssignPolicy(AdmissionPolicy):
    """Accept (per an inner policy) but spread session phases.

    The n-th admitted session is offset by ``(n % slots) / slots`` of its
    *own* period, so deadlines of a simultaneous burst land in distinct
    phase slots instead of one synchronized report storm.  Offsets are
    deterministic in admission order — resubmitting the same fleet yields
    the same phases.
    """

    name = "phase-assign"

    def __init__(
        self, slots: int = 4, inner: Optional[AdmissionPolicy] = None
    ) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self.slots = slots
        self.inner = inner or AcceptAllPolicy()

    def decide(self, spec, path, service) -> AdmissionDecision:
        verdict = self.inner.decide(spec, path, service)
        if not verdict.admitted:
            return verdict
        slot = service.admitted_count() % self.slots
        offset = (slot / self.slots) * spec.period_s
        return AdmissionDecision.accept(offset_s=verdict.start_offset_s + offset)

    def describe(self) -> str:
        return f"phase-assign(slots={self.slots}, inner={self.inner.describe()})"


#: policy-name registry for scenario specs and the CLI
ADMISSION_POLICIES = {
    AcceptAllPolicy.name: AcceptAllPolicy,
    PerAreaCapPolicy.name: PerAreaCapPolicy,
    PhaseAssignPolicy.name: PhaseAssignPolicy,
}


def make_admission_policy(config: Optional[Dict] = None) -> AdmissionPolicy:
    """Build a policy from a plain dict (the declarative scenario form).

    ``{"policy": "per-area-cap", "max_overlapping": 2}`` — every key other
    than ``policy`` is passed to the policy constructor.  ``None`` or an
    empty dict yields :class:`AcceptAllPolicy`.  ``phase-assign`` accepts a
    nested ``inner`` dict of the same shape.
    """
    if not config:
        return AcceptAllPolicy()
    params = dict(config)
    name = params.pop("policy", AcceptAllPolicy.name)
    cls = ADMISSION_POLICIES.get(name)
    if cls is None:
        raise ValueError(
            f"unknown admission policy {name!r}; "
            f"expected one of {sorted(ADMISSION_POLICIES)}"
        )
    if "inner" in params:
        params["inner"] = make_admission_policy(params["inner"])
    return cls(**params)
