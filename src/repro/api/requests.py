"""Service-facing query requests and per-period outcomes.

A :class:`QueryRequest` is what one mobile user asks of the service: the
paper's query six-tuple, a session start time, and (optionally) the
user's motion.  Unlike the experiment-era ``QueryParams`` — one frozen
parameter set shared by every user of a run — each request stands alone,
so a single service instance can serve heterogeneous workloads: mixed
periods, radii, aggregations and freshness bounds side by side.

Validation lives here so that an invalid combination fails at the API
boundary with one clear sentence instead of a traceback deep inside the
protocol engine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..core.query import Aggregation
from ..geometry.vec import Vec2
from ..mobility.path import PiecewisePath
from ..mobility.profile import ProfileProvider

#: per-request motion-profile delivery modes (None = service default)
PROFILE_MODES = ("full", "planner", "predictor")

#: answer-accuracy classes, exactest first.  ``exact`` runs the full
#: collection protocol (bit-identical to the pre-accuracy service);
#: ``medium``/``coarse`` answer periods from the in-network summary plane
#: (:mod:`repro.approx`) at a bounded error, trading fidelity for frames.
ACCURACY_LEVELS = ("exact", "medium", "coarse")


def validate_query_params(
    radius_m: float, period_s: float, freshness_s: float
) -> None:
    """Reject impossible query-parameter combinations with one-line errors.

    Shared by :class:`QueryRequest`, the experiment config, and the CLI so
    every entry point fails the same way.
    """
    if radius_m <= 0:
        raise ValueError(f"query radius must be > 0 m, got {radius_m:g}")
    if period_s <= 0:
        raise ValueError(f"query period must be > 0 s, got {period_s:g}")
    if freshness_s <= 0:
        raise ValueError(f"freshness bound must be > 0 s, got {freshness_s:g}")
    if freshness_s > period_s:
        raise ValueError(
            f"freshness bound ({freshness_s:g} s) must not exceed the query "
            f"period ({period_s:g} s): a result cannot require readings "
            f"fresher than the interval it covers"
        )


@dataclass(frozen=True)
class QueryRequest:
    """One user's spatiotemporal query, as submitted to the service.

    Attributes:
        attribute: sensor attribute ``α`` to aggregate.
        aggregation: aggregation function ``F``.
        radius_m: query-area radius ``Rq`` around the user.
        period_s: ``Tperiod`` — one result due every period.
        freshness_s: ``Tfresh`` — max reading age at delivery
            (must not exceed ``period_s``).
        start_s: requested session start (admission may offset it).
        lifetime_s: ``Td``; None = run until the service horizon.
        user_id: stable user identity; None = assigned by the service.
        path: the user's true motion.  None = the service synthesises the
            paper's random-direction walk for this user.
        provider: explicit motion-profile provider.  None = built from
            ``profile_mode`` (or the service default) over ``path``.
        profile_mode: "full" | "planner" | "predictor" | None (service
            default).
        advance_time_s / gps_error_m / sampling_period_s: provider knobs;
            None = service defaults.
        accuracy: "exact" (default; full collection protocol) or
            "medium"/"coarse" — answer each period from cached
            multiresolution summaries with a declared ``error_bound``.
    """

    attribute: str = "temperature"
    aggregation: Aggregation = Aggregation.AVG
    radius_m: float = 150.0
    period_s: float = 2.0
    freshness_s: float = 1.0
    start_s: float = 0.0
    lifetime_s: Optional[float] = None
    user_id: Optional[int] = None
    path: Optional[PiecewisePath] = None
    provider: Optional[ProfileProvider] = None
    profile_mode: Optional[str] = None
    advance_time_s: Optional[float] = None
    gps_error_m: Optional[float] = None
    sampling_period_s: Optional[float] = None
    accuracy: str = "exact"

    def __post_init__(self) -> None:
        validate_query_params(self.radius_m, self.period_s, self.freshness_s)
        if self.start_s < 0:
            raise ValueError(f"session start must be >= 0 s, got {self.start_s:g}")
        if self.lifetime_s is not None and self.lifetime_s < self.period_s:
            raise ValueError(
                f"lifetime ({self.lifetime_s:g} s) must cover at least one "
                f"period ({self.period_s:g} s)"
            )
        if self.user_id is not None and self.user_id < 0:
            raise ValueError(f"user_id must be >= 0, got {self.user_id}")
        if self.profile_mode is not None and self.profile_mode not in PROFILE_MODES:
            raise ValueError(
                f"unknown profile mode {self.profile_mode!r}; "
                f"expected one of {PROFILE_MODES}"
            )
        if self.accuracy not in ACCURACY_LEVELS:
            raise ValueError(
                f"unknown accuracy {self.accuracy!r}; "
                f"expected one of {ACCURACY_LEVELS}"
            )

    def with_start(self, start_s: float) -> "QueryRequest":
        """The same request shifted to a new start time (phase assignment)."""
        return replace(self, start_s=start_s)


@dataclass(frozen=True)
class PeriodOutcome:
    """One streamed per-period result, as observed at its deadline.

    Yielded by :meth:`SessionHandle.results`; classification is made at
    the deadline instant — a result that straggles in later never flips
    ``delivered`` for an already-streamed period.
    """

    k: int
    deadline: float
    delivered: bool
    on_time: bool
    value: Optional[float]
    contributors: int
    delivered_at: Optional[float]
    #: centre of the area the service actually queried, when reported
    area_center: Optional[Vec2] = None
    #: declared worst-case |answer - exact| for approximate sessions;
    #: None on the exact path (the answer *is* the protocol's answer)
    error_bound: Optional[float] = None

    @property
    def missed(self) -> bool:
        """True when no on-time result reached the user."""
        return not self.on_time
