"""Service-facing public API: the stable surface of the reproduction.

``repro.api`` is the primary entry point for everything the paper calls
"the query service".  One :class:`MobiQueryService` wraps a simulated
world (network + kernel + protocol); mobile users :meth:`~MobiQueryService
.submit` independent :class:`QueryRequest`\\ s — each with its own
attribute, aggregation, radius, period, freshness and start — and hold
:class:`SessionHandle`\\ s for streaming (:meth:`~SessionHandle.results`),
cancellation and scoring.  Admission control (:mod:`repro.api.admission`)
guards the shared medium; declarative scenarios (:mod:`repro.api.
scenarios`) package whole workloads as plain data runnable from the CLI
(``repro scenario <name>``).

Since PR 5 the surface is backend-agnostic: :class:`QueryBackend`
(:mod:`repro.api.backend`) names the five-verb protocol
(``submit``/``advance``/``cancel``/``stats``/``close``) that both
:class:`MobiQueryService` (one world) and
:class:`repro.cluster.ClusterService` (regional shards) implement —
``build_backend(spec)`` picks the plane a scenario asks for.

The legacy experiment surface (``repro.experiments``) is a thin adapter
over this package and remains bit-identical for the paper figures.
"""

from .admission import (
    ADMISSION_POLICIES,
    AcceptAllPolicy,
    AdmissionDecision,
    AdmissionPolicy,
    PerAreaCapPolicy,
    PhaseAssignPolicy,
    make_admission_policy,
)
from .backend import BackendStats, QueryBackend
from .requests import PeriodOutcome, QueryRequest, validate_query_params
from .scenarios import (
    SCENARIOS,
    ScenarioResult,
    ScenarioSpec,
    build_backend,
    build_request_payloads,
    build_requests,
    build_service,
    get_scenario,
    list_scenarios,
    load_scenario_file,
    request_from_payload,
    run_scenario,
)
from .service import (
    AdmissionError,
    MobiQueryService,
    ServiceClosedError,
    SessionHandle,
    STATUS_ADMITTED,
    STATUS_CANCELLED,
    STATUS_COMPLETED,
    STATUS_REJECTED,
)

__all__ = [
    # backend protocol
    "QueryBackend",
    "BackendStats",
    # service façade
    "MobiQueryService",
    "SessionHandle",
    "QueryRequest",
    "PeriodOutcome",
    "AdmissionError",
    "ServiceClosedError",
    "validate_query_params",
    "STATUS_REJECTED",
    "STATUS_ADMITTED",
    "STATUS_CANCELLED",
    "STATUS_COMPLETED",
    # admission
    "AdmissionPolicy",
    "AdmissionDecision",
    "AcceptAllPolicy",
    "PerAreaCapPolicy",
    "PhaseAssignPolicy",
    "ADMISSION_POLICIES",
    "make_admission_policy",
    # scenarios
    "ScenarioSpec",
    "ScenarioResult",
    "SCENARIOS",
    "get_scenario",
    "list_scenarios",
    "load_scenario_file",
    "build_requests",
    "build_request_payloads",
    "request_from_payload",
    "build_service",
    "build_backend",
    "run_scenario",
]
