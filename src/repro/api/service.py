"""The MobiQuery service façade: the repo's primary public entry point.

One :class:`MobiQueryService` owns a world — simulation kernel, sensor
network, duty-cycling backbone, routing/flooding, and one in-network
protocol engine — and exposes the *service* surface the paper describes:
mobile users ``submit()`` spatiotemporal queries and get back a
:class:`SessionHandle` with a submit/stream/cancel lifecycle:

    service = MobiQueryService(ExperimentConfig(mode=MODE_JIT, seed=7,
                                                duration_s=120.0))
    handle = service.submit(QueryRequest(radius_m=60.0, period_s=2.0))
    for outcome in handle.results():          # advances the shared clock
        print(outcome.k, outcome.on_time, outcome.value)
    result = handle.result()                  # scored SessionResult

Every request carries its own attribute/aggregation/radius/period/
freshness/start — heterogeneous per-user workloads are the normal case,
not a special mode.  A pluggable :class:`AdmissionPolicy` guards the
shared medium (per-area caps, server-side phase assignment); rejected
requests provably leave the kernel untouched.

The legacy experiment surface (``ExperimentConfig`` + ``run_experiment``)
is reimplemented as a thin adapter over this façade and remains
bit-identical to its pre-API behaviour; new code should talk to the
service directly.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterator, List, Optional

import numpy as np

from ..approx.plane import SummaryAnswer, SummaryPlane
from ..core.baseline import NoPrefetchProtocol
from ..core.gateway import MobiQueryGateway, NoPrefetchGateway
from ..core.metrics import (
    ContentionTracker,
    SessionMetrics,
    StorageTracker,
    build_session_metrics,
)
from ..core.query import QuerySpec
from ..core.service import MobiQueryConfig, MobiQueryProtocol
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..experiments.config import (
    MODE_GREEDY,
    MODE_IDLE,
    MODE_JIT,
    MODE_NP,
    PROFILE_FULL,
    PROFILE_PLANNER,
    PROFILE_PREDICTOR,
    ExperimentConfig,
)
from ..geometry.vec import Vec2
from ..mobility.gps import GpsModel
from ..mobility.models import random_direction_path
from ..mobility.path import PiecewisePath
from ..mobility.planner import FullKnowledgeProvider, PlannerProfileProvider
from ..mobility.predictor import HistoryPredictorProvider
from ..mobility.profile import ProfileProvider
from ..net.flooding import FloodManager
from ..net.network import build_network
from ..net.routing import GeoRouter
from ..power.ccp import CcpProtocol
from ..sim.kernel import Simulator
from ..sim.rng import RandomStreams
from ..sim.trace import Tracer
from ..workload.engine import Workload, WorkloadResult
from ..workload.session import SessionResult, UserPlan, UserSession
from .admission import AcceptAllPolicy, AdmissionPolicy
from .backend import BackendStats
from .requests import PeriodOutcome, QueryRequest

#: extra simulated time after the last deadline (late stragglers, GC)
RUN_TAIL_S = 0.5

#: session lifecycle states
STATUS_REJECTED = "rejected"
STATUS_ADMITTED = "admitted"
STATUS_CANCELLED = "cancelled"
STATUS_COMPLETED = "completed"


class AdmissionError(ValueError):
    """Raised by :meth:`SessionHandle.require_admitted` on a rejected handle."""


class ServiceClosedError(ValueError):
    """The backend's lifecycle is over: ``submit()`` on a sealed/closed
    service, or streaming/scoring a handle after ``close()``.

    Subclasses :class:`ValueError` so callers that guarded against the old
    untyped raise keep working.
    """


def resolve_user_id(handles: List["SessionHandle"], user_id: Optional[int]) -> int:
    """The user-identity rule: lowest-free auto-assignment, live-collision
    rejection for explicit ids.

    Shared by :class:`MobiQueryService` and the cluster router — the
    single-shard identity guarantee (a one-shard cluster assigns the exact
    id sequence a single service would) depends on both using exactly this
    function.  Auto-assignment skips every id an *accepted* session ever
    used (cancelled included: their streams were consumed); an explicit id
    only collides with a live (accepted, uncancelled) session.
    """
    if user_id is None:
        used = {
            h.spec.user_id
            for h in handles
            if h.accepted and h.spec is not None
        }
        candidate = 0
        while candidate in used:
            candidate += 1
        return candidate
    if any(
        h.spec is not None
        and h.spec.user_id == user_id
        and h.accepted
        and h.status != STATUS_CANCELLED
        for h in handles
    ):
        raise ValueError(
            f"user {user_id} already has a live session; cancel it first "
            f"or submit without a user_id"
        )
    return user_id


def user_stream(base: str, user_id: int) -> str:
    """Stream name for a per-user random source.

    User 0 keeps the historical un-suffixed names so single-user runs
    consume exactly the same random sequences as before the multi-user
    engine existed (bit-for-bit reproducibility of the paper figures).
    """
    return base if user_id == 0 else f"{base}.u{user_id}"


def make_user_path(
    config: ExperimentConfig,
    streams: RandomStreams,
    user_id: int = 0,
) -> PiecewisePath:
    """The paper's user motion: random-direction from the region corner.

    User 0 starts at the corner exactly as in the paper; later users start
    at an independent uniform position inside the margin-inset region (a
    fleet piling onto one corner would measure MAC contention at a single
    cell, not the service).
    """
    region = config.network.region
    rng = streams.stream(user_stream("mobility", user_id))
    if user_id == 0:
        start = Vec2(
            region.x_min + config.mobility.margin_m,
            region.y_min + config.mobility.margin_m,
        )
    else:
        margin = config.mobility.margin_m
        start = Vec2(
            float(rng.uniform(region.x_min + margin, region.x_max - margin)),
            float(rng.uniform(region.y_min + margin, region.y_max - margin)),
        )
    return random_direction_path(
        region=region,
        duration_s=config.duration_s,
        config=config.mobility,
        rng=rng,
        start=start,
    )


def make_profile_provider(
    config: ExperimentConfig,
    true_path: PiecewisePath,
    streams: RandomStreams,
    user_id: int = 0,
    profile_mode: Optional[str] = None,
    advance_time_s: Optional[float] = None,
    gps_error_m: Optional[float] = None,
    sampling_period_s: Optional[float] = None,
) -> ProfileProvider:
    """Build the motion-profile pipeline for one user.

    ``profile_mode`` and the knob overrides default to the service config;
    a per-request override lets one fleet mix full-knowledge, planner and
    predictor users.
    """
    mode = profile_mode or config.profile_mode
    if mode == PROFILE_FULL:
        return FullKnowledgeProvider(true_path, config.duration_s)
    if mode == PROFILE_PLANNER:
        advance = (
            advance_time_s if advance_time_s is not None else config.advance_time_s
        )
        return PlannerProfileProvider(
            true_path, config.duration_s, advance_time_s=advance
        )
    if mode == PROFILE_PREDICTOR:
        error = gps_error_m if gps_error_m is not None else config.gps_error_m
        sampling = (
            sampling_period_s
            if sampling_period_s is not None
            else config.sampling_period_s
        )
        return HistoryPredictorProvider(
            true_path,
            config.duration_s,
            gps=GpsModel(max_error_m=error),
            rng=streams.stream(user_stream("gps", user_id)),
            sampling_period_s=sampling,
        )
    raise ValueError(f"unhandled profile mode {mode!r}")


class SessionHandle:
    """One submitted query session: status, streamed results, cancel.

    Handles are created by :meth:`MobiQueryService.submit` — rejected
    requests get a handle too (``status == "rejected"``, ``accepted`` is
    False) so callers can uniformly inspect the admission verdict and
    resubmit later.
    """

    def __init__(
        self,
        service: "MobiQueryService",
        request: QueryRequest,
        status: str,
        reason: str = "",
        spec: Optional[QuerySpec] = None,
        path: Optional[PiecewisePath] = None,
        session: Optional[UserSession] = None,
    ) -> None:
        self.service = service
        self.request = request
        self.status = status
        self.reason = reason
        self.spec = spec
        self.path = path
        self.session = session
        self.submitted_at = service.sim.now
        self.cancelled_at: Optional[float] = None
        self._result: Optional[SessionResult] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def accepted(self) -> bool:
        """Whether the admission policy let the session in."""
        return self.status != STATUS_REJECTED

    @property
    def user_id(self) -> Optional[int]:
        return self.spec.user_id if self.spec is not None else self.request.user_id

    @property
    def query_id(self) -> Optional[int]:
        return self.spec.query_id if self.spec is not None else None

    @property
    def session_key(self) -> Optional[tuple]:
        return self.spec.session_key if self.spec is not None else None

    def require_admitted(self) -> "SessionHandle":
        """Return self, or raise :class:`AdmissionError` if rejected."""
        if not self.accepted:
            raise AdmissionError(
                f"session was rejected by admission control: {self.reason}"
            )
        return self

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def results(self) -> Iterator[PeriodOutcome]:
        """Stream per-period outcomes, advancing the shared clock as needed.

        Yields one :class:`PeriodOutcome` per period, in order, classifying
        each at its deadline instant.  Driving the iterator runs the shared
        kernel forward, so other concurrent sessions advance too.  A
        cancelled session's stream ends at the cancellation time.
        """
        if self.service.closed:
            raise ServiceClosedError(
                "results() on a handle of a closed service (use the "
                "WorkloadResult close() returned)"
            )
        self.require_admitted()
        assert self.spec is not None and self.session is not None
        spec = self.spec
        for k in range(1, spec.num_periods + 1):
            deadline = spec.deadline(k)
            if self.cancelled_at is not None and deadline > self.cancelled_at:
                return
            self.service.run_until(deadline)
            yield self.period_outcome(k)

    def period_outcome(self, k: int) -> PeriodOutcome:
        """Classify period ``k`` as observed at its deadline instant.

        Pure read: the caller must already have advanced the world to (at
        least) the period's deadline — :meth:`results` does, and so does
        the serve daemon's pump, which harvests outcomes through exactly
        this method so the wire stream always matches the scored record.
        """
        self.require_admitted()
        assert self.spec is not None and self.session is not None
        deadline = self.spec.deadline(k)
        records = self.session.gateway.deliveries_for(k)
        on_time = [d for d in records if d.time <= deadline + 1e-9]
        # Same selection rule as build_session_metrics: after a profile
        # correction two collectors may both deliver on time — the user
        # keeps the best (most contributors) on-time result, so the
        # streamed value always matches the scored record.
        if on_time:
            chosen = max(on_time, key=lambda d: (len(d.contributors), d.time))
        else:
            chosen = records[0] if records else None
        return PeriodOutcome(
            k=k,
            deadline=deadline,
            delivered=bool(records),
            on_time=bool(on_time),
            value=chosen.value if chosen is not None else None,
            contributors=len(chosen.contributors) if chosen is not None else 0,
            delivered_at=chosen.time if chosen is not None else None,
            area_center=chosen.area_center if chosen is not None else None,
            error_bound=chosen.error_bound if chosen is not None else None,
        )

    def cancel(self) -> None:
        """Tear the session down mid-run (see :meth:`MobiQueryService.cancel`)."""
        self.service.cancel(self)

    def result(self) -> SessionResult:
        """The scored session (runs the service to completion if needed)."""
        if self.service.closed:
            raise ServiceClosedError(
                "result() on a handle of a closed service (use the "
                "WorkloadResult close() returned)"
            )
        self.require_admitted()
        if self._result is None:
            if self.status != STATUS_CANCELLED:
                self.service.run()
            self._result = self.service._score(self)
        return self._result

    def metrics(self) -> SessionMetrics:
        """The scored per-period metrics (convenience over :meth:`result`)."""
        return self.result().metrics

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        key = self.session_key
        return f"<SessionHandle {key if key else '-'} {self.status}>"


class MobiQueryService:
    """Submit/stream/cancel façade over one shared simulated world.

    This is the single-world implementation of the
    :class:`~repro.api.backend.QueryBackend` protocol
    (``submit``/``advance``/``cancel``/``stats``/``close``); the sharded
    :class:`~repro.cluster.service.ClusterService` implements the same
    surface over many regional worlds.

    Args:
        config: the world description — service variant (``mode``), seed,
            horizon (``duration_s``), network, default mobility and profile
            pipeline.  The ``query``/``num_users``/``arrival_*`` fields are
            *defaults for the legacy experiment adapter only*; the service
            itself takes per-user parameters from each
            :class:`QueryRequest`.
        admission: the admission policy (default accept-all).
        tracer: optional shared tracer (a fresh one by default).
        faults: optional :class:`FaultPlan` to inject against this world.
            ``None`` (or an empty plan) is bit-identical to a service built
            before the fault plane existed: the dedicated ``"faults"`` RNG
            stream draws nothing and no event is scheduled.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        admission: Optional[AdmissionPolicy] = None,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.config = config
        self.admission = admission or AcceptAllPolicy()
        self.sim = Simulator()
        self.streams = RandomStreams(config.seed)
        self.tracer = tracer if tracer is not None else Tracer()
        # De-align the shared beacon schedule from the query start: real
        # users issue queries at arbitrary phases of the PSM cycle.
        self.psm_offset_s = float(
            self.streams.stream("psm").uniform(0.0, config.network.sleep_period_s)
        )
        network_config = replace(config.network, psm_offset_s=self.psm_offset_s)
        self.network = build_network(
            self.sim, network_config, self.streams, self.tracer
        )
        CcpProtocol().apply(self.network, self.streams)
        self.geo = GeoRouter(self.network)
        self.flood = FloodManager(self.network)
        self.workload = Workload(self.network, self.tracer)
        self.protocol: Optional[MobiQueryProtocol] = None
        self.np_protocol: Optional[NoPrefetchProtocol] = None
        self.storage: Optional[StorageTracker] = None
        self.contention: Optional[ContentionTracker] = None
        if config.mode in (MODE_JIT, MODE_GREEDY):
            self.protocol = MobiQueryProtocol(
                self.network,
                self.geo,
                MobiQueryConfig(
                    prefetch_policy=config.mode,
                    pickup_radius_m=config.pickup_radius_m,
                    parent_upgrade=config.parent_upgrade,
                    redeliver_setups=config.redeliver_setups,
                ),
                self.tracer,
            )
            self.storage = StorageTracker(self.tracer)
            self.contention = ContentionTracker(
                self.tracer,
                sleep_period_s=config.network.sleep_period_s,
                active_window_s=config.network.active_window_s,
                query_radius_m=config.query.radius_m,
                comm_range_m=config.network.comm_range_m,
                psm_offset_s=self.psm_offset_s,
            )
        self.faults = faults if faults is not None else FaultPlan()
        self.fault_injector: Optional[FaultInjector] = None
        if not self.faults.world_empty:
            self.fault_injector = FaultInjector(
                self.faults, self.network, self.streams, tracer=self.tracer
            )
            self.fault_injector.start()
        #: multiresolution summary cache (:mod:`repro.approx`); created on
        #: the first approximate admission so exact-only runs never carry
        #: one — the bit-identity guarantee of ``accuracy="exact"``.
        self.summary_plane: Optional[SummaryPlane] = None
        self.handles: List[SessionHandle] = []
        self._admitted_total = 0
        self._completed = False
        self._closed = False
        self._closed_result: Optional[WorkloadResult] = None

    # ------------------------------------------------------------------
    # Introspection the policies and adapters need
    # ------------------------------------------------------------------
    @property
    def duration_s(self) -> float:
        """The service horizon (end of the simulated day)."""
        return self.config.duration_s

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has sealed the service."""
        return self._closed

    def admitted_count(self) -> int:
        """How many sessions were ever admitted (phase-slot counter)."""
        return self._admitted_total

    def admitted_handles(self) -> List[SessionHandle]:
        """Handles of every admitted session, in submission order."""
        return [h for h in self.handles if h.accepted]

    def live_session_specs(self, at: float) -> List[SessionHandle]:
        """Admitted, uncancelled sessions whose lifetime covers time ``at``."""
        live = []
        for handle in self.handles:
            if not handle.accepted or handle.status == STATUS_CANCELLED:
                continue
            spec = handle.spec
            assert spec is not None
            if spec.start_s <= at < spec.end_s:
                live.append(handle)
        return live

    # ------------------------------------------------------------------
    # The lifecycle: submit / run / cancel / finalize
    # ------------------------------------------------------------------
    def submit(self, request: QueryRequest) -> SessionHandle:
        """Submit one query; returns its handle (possibly rejected).

        The request is validated, the user's motion resolved (synthesised
        if the request carries no path — policies need the motion to judge
        area overlap), and the admission policy asked.  A rejected request
        leaves the *kernel* untouched: no proxy joins the channel, no event
        is scheduled, no protocol or scheduler state appears.  The one
        side effect of rejection is that a synthesised path has consumed
        draws from the user's mobility stream, so a resubmission without
        an explicit path walks a different (equally distributed) route.
        """
        if self.config.mode == MODE_IDLE:
            raise ValueError("an idle-mode service accepts no queries")
        if request.accuracy != "exact" and self.config.mode == MODE_NP:
            raise ValueError(
                "approximate accuracy requires the MobiQuery service; the "
                "NP baseline serves exact queries only"
            )
        if self._closed:
            raise ServiceClosedError(
                "submit() on a closed service (close() already sealed the run)"
            )
        if self._completed:
            raise ServiceClosedError(
                "the service horizon has passed (run finished)"
            )
        user_id = resolve_user_id(self.handles, request.user_id)
        start_s = max(request.start_s, self.sim.now)
        path = request.path
        if path is None:
            path = make_user_path(self.config, self.streams, user_id)
        spec = self._build_spec(request, user_id, start_s)
        decision = self.admission.decide(spec, path, self)
        if not decision.admitted:
            handle = SessionHandle(
                self, request, STATUS_REJECTED, reason=decision.reason
            )
            self.handles.append(handle)
            self.tracer.emit(
                "admission-rejected",
                self.sim.now,
                user=user_id,
                reason=decision.reason,
            )
            return handle
        if decision.start_offset_s:
            offset_start = start_s + decision.start_offset_s
            # Never let a phase offset push the session past its last
            # serviceable period; in that corner the original phase wins.
            if offset_start <= self.duration_s - request.period_s:
                spec = self._build_spec(request, user_id, offset_start)
        session = self._admit(request, spec, path)
        handle = SessionHandle(
            self,
            request,
            STATUS_ADMITTED,
            spec=spec,
            path=path,
            session=session,
        )
        self.handles.append(handle)
        self._admitted_total += 1
        return handle

    def _build_spec(
        self, request: QueryRequest, user_id: int, start_s: float
    ) -> QuerySpec:
        horizon = self.duration_s
        if start_s > horizon - request.period_s + 1e-9:
            raise ValueError(
                f"session starts at {start_s:.1f}s but the service horizon is "
                f"{horizon:.1f}s — no serviceable period left"
            )
        lifetime = request.lifetime_s
        if lifetime is None:
            lifetime = horizon - start_s
        else:
            lifetime = min(lifetime, horizon - start_s)
        return QuerySpec(
            attribute=request.attribute,
            aggregation=request.aggregation,
            radius_m=request.radius_m,
            period_s=request.period_s,
            freshness_s=request.freshness_s,
            lifetime_s=lifetime,
            user_id=user_id,
            start_s=start_s,
        )

    def _admit(
        self, request: QueryRequest, spec: QuerySpec, path: PiecewisePath
    ) -> UserSession:
        user_id = spec.user_id
        rng: np.random.Generator = self.streams.stream(
            user_stream("proxy", user_id)
        )
        if request.accuracy != "exact":
            # Summary-served session: no prefetch chains, no floods, no
            # per-period trees — answers compose from the cached plane.
            plan = UserPlan(user_id=user_id, spec=spec, path=path)
            session = self.workload.add_approx_user(
                plan, self._ensure_summary_plane(), request.accuracy, rng
            )
        elif self.config.mode == MODE_NP:
            if self.np_protocol is None:
                self.np_protocol = NoPrefetchProtocol(
                    self.network, self.geo, self.flood, tracer=self.tracer
                )
            plan = UserPlan(user_id=user_id, spec=spec, path=path)
            session = self.workload.add_noprefetch_user(
                plan, self.np_protocol, self.flood, rng=rng
            )
        else:
            provider = request.provider
            if provider is None:
                provider = make_profile_provider(
                    self.config,
                    path,
                    self.streams,
                    user_id,
                    profile_mode=request.profile_mode,
                    advance_time_s=request.advance_time_s,
                    gps_error_m=request.gps_error_m,
                    sampling_period_s=request.sampling_period_s,
                )
            plan = UserPlan(
                user_id=user_id, spec=spec, path=path, provider=provider
            )
            assert self.protocol is not None
            session = self.workload.add_mobiquery_user(plan, self.protocol, rng)
        if self.storage is not None:
            self.storage.register_spec(spec)
        if self.fault_injector is not None:
            # Lets the gateway watchdog mark unrecoverable periods as
            # degraded; stays False in fault-free runs so ordinary watchdog
            # re-injections never count as degradation.
            session.gateway.faults_active = True
        return session

    def _ensure_summary_plane(self) -> SummaryPlane:
        """The world's summary plane, created on first approximate use.

        Creation is RNG-free and schedules nothing; once alive, the plane
        also overhears the exact protocol's report traffic so summaries
        sharpen on traffic that was flowing anyway.
        """
        if self.summary_plane is None:
            self.summary_plane = SummaryPlane(self.network)
            if self.protocol is not None:
                self.protocol.summary_observer = self.summary_plane
        return self.summary_plane

    def summary_answer(
        self,
        center: Vec2,
        radius_m: float,
        aggregation,
        accuracy: str = "coarse",
        freshness_s: float = float("inf"),
    ) -> Optional[SummaryAnswer]:
        """One ad-hoc answer from this world's summary plane.

        The cluster router composes these per-shard partials
        (associatively) into boundary-free answers; callers wanting
        staleness surfaced should pass their freshness bound.
        """
        return self._ensure_summary_plane().answer(
            center, radius_m, accuracy, freshness_s, aggregation
        )

    def cancel(self, handle: SessionHandle) -> None:
        """Tear down one session mid-run.

        The proxy-side gateway goes silent, the scheduler slot is freed,
        every piece of in-network state keyed by the session is released
        (collector chains, tree states, cancel marks, buffered sleeper
        setups, flood dedup), and the proxy endpoint leaves the channel.
        Cancelling a rejected, already-cancelled, or completed handle is a
        no-op — a session that ran to the horizon stays "completed".
        """
        if (
            not handle.accepted
            or handle.status in (STATUS_CANCELLED, STATUS_COMPLETED)
            or self._completed
        ):
            return
        self._teardown_session(handle)
        handle.status = STATUS_CANCELLED
        handle.cancelled_at = self.sim.now

    def _teardown_session(self, handle: SessionHandle) -> None:
        """Release every piece of state keyed by one admitted session."""
        assert handle.spec is not None and handle.session is not None
        key = handle.spec.session_key
        handle.session.gateway.close()
        self.workload.scheduler.remove(key)
        if self.protocol is not None:
            self.protocol.release_session(*key)
        if self.np_protocol is not None:
            self.np_protocol.release_session(*key)
        if self.summary_plane is not None:
            # Normally released by the gateway's close(); kept here so the
            # teardown invariant (zero summary residue) never depends on
            # gateway subclass behaviour.
            self.summary_plane.release_session(key)
        self.network.channel.unregister_mobile(handle.session.proxy.node_id)

    def release_session_state(self, handle: SessionHandle) -> None:
        """Release a *completed* session's in-network state post-scoring.

        A session that ran to the horizon keeps benign residue around —
        cached tree states, delivered batches, its scheduler slot — which
        is harmless in a batch run (the process exits) but accumulates in
        an always-on daemon.  After ``close()`` the scores are cached on
        the handles, so the serve drain calls this to apply the same
        teardown ``cancel`` performs, driving the leak census to zero.
        No-op for rejected, cancelled (already torn down) or still-running
        sessions, and idempotent via the scheduler/protocol release paths.
        """
        if not handle.accepted or handle.status != STATUS_COMPLETED:
            return
        if handle._result is None:
            self._score(handle)
        self._teardown_session(handle)

    def run_until(self, t: float) -> None:
        """Advance the shared kernel to absolute time ``t`` (idempotent)."""
        if t > self.sim.now:
            self.sim.run(until=t)

    def advance(self, until: float) -> None:
        """Advance the world's clock to ``until`` (the backend verb)."""
        self.run_until(until)

    def run(self) -> None:
        """Run the world to the service horizon (plus the straggler tail)."""
        self.run_until(self.duration_s + RUN_TAIL_S)
        self._completed = True

    def finalize(self) -> WorkloadResult:
        """Score every admitted session (running to the horizon if needed).

        Cancelled sessions are scored over the periods that elapsed before
        their cancellation; everything else over the full horizon.
        """
        if not self._completed:
            self.run()
        sessions = [self._score(h) for h in self.admitted_handles()]
        for handle in self.admitted_handles():
            if handle.status == STATUS_ADMITTED:
                handle.status = STATUS_COMPLETED
        return WorkloadResult(sessions=sessions)

    def _score(self, handle: SessionHandle) -> SessionResult:
        assert handle.session is not None and handle.spec is not None
        duration = self.duration_s
        if handle.cancelled_at is not None:
            duration = min(duration, handle.cancelled_at)
        if handle._result is None:
            handle._result = handle.session.finalize(
                self.network,
                duration,
                fidelity_threshold=self.config.fidelity_threshold,
            )
        return handle._result

    def stats(self) -> BackendStats:
        """A uniform counter snapshot (the backend verb)."""
        channel = self.network.channel
        return BackendStats(
            now=self.sim.now,
            events_executed=self.sim.events_executed,
            frames_sent=channel.frames_sent,
            frames_collided=channel.frames_collided,
            frames_delivered=channel.frames_delivered,
            backbone_size=self.backbone_size,
            shards=1,
            submitted=len(self.handles),
            admitted=self._admitted_total,
            rejected=sum(1 for h in self.handles if not h.accepted),
            cancelled=sum(
                1 for h in self.handles if h.status == STATUS_CANCELLED
            ),
        )

    def close(self) -> WorkloadResult:
        """Run to the horizon, score everything, seal the service.

        Idempotent: the scored result is cached on first close and later
        calls return it unchanged; ``submit`` after close raises.
        """
        if self._closed_result is None:
            self._closed_result = self.finalize()
        self._closed = True
        return self._closed_result

    # ------------------------------------------------------------------
    # Convenience metrics mirrors (the RunResult fields)
    # ------------------------------------------------------------------
    @property
    def events_executed(self) -> int:
        return self.sim.events_executed

    @property
    def backbone_size(self) -> int:
        return len(self.network.active_nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MobiQueryService mode={self.config.mode} seed={self.config.seed} "
            f"sessions={len(self.handles)} t={self.sim.now:.1f}>"
        )


# Re-exported for the legacy runner's scoring path
__all__ = [
    "AdmissionError",
    "BackendStats",
    "MobiQueryService",
    "ServiceClosedError",
    "SessionHandle",
    "RUN_TAIL_S",
    "STATUS_ADMITTED",
    "STATUS_CANCELLED",
    "STATUS_COMPLETED",
    "STATUS_REJECTED",
    "make_profile_provider",
    "make_user_path",
    "resolve_user_id",
    "user_stream",
    "build_session_metrics",
]
