"""The backend protocol: what every query plane implements.

:class:`~repro.api.service.MobiQueryService` (one world) and
:class:`~repro.cluster.service.ClusterService` (many regional worlds behind
one router) expose the same five-verb surface, so callers — the scenario
runner, the CLI, the perf harness, user code — are written once against
:class:`QueryBackend` and cannot tell a cluster from a single world:

* ``submit(request) -> SessionHandle`` — admission + session creation; the
  handle carries the whole submit/stream/cancel/result lifecycle.
* ``advance(until)`` — drive the simulated clock(s) to an absolute time.
* ``cancel(handle)`` — tear one session down mid-run (idempotent).
* ``stats() -> BackendStats`` — a uniform counter snapshot.
* ``close() -> WorkloadResult`` — run to the horizon, score every admitted
  session, and seal the backend (idempotent; later ``submit`` raises).

The protocol is ``runtime_checkable`` so tests can assert conformance
structurally (``isinstance(backend, QueryBackend)``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Dict, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..workload.engine import WorkloadResult
    from .requests import QueryRequest
    from .service import SessionHandle


@dataclass(frozen=True)
class BackendStats:
    """A uniform snapshot of one backend's counters.

    For a cluster these are aggregates over every shard (``now`` is the
    least-advanced shard clock, so it is a safe "all shards reached" time).
    """

    #: simulated time reached (min over shards for a cluster)
    now: float
    #: kernel events executed (summed over shards)
    events_executed: int
    frames_sent: int
    frames_collided: int
    frames_delivered: int
    #: always-on backbone nodes (summed over shards)
    backbone_size: int
    #: how many independent worlds serve this backend (1 = single service)
    shards: int = 1
    #: session lifecycle tallies
    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    cancelled: int = 0

    def to_dict(self) -> Dict:
        """JSON-ready plain-dict form (the serve daemon's ``/stats`` shape)."""
        return asdict(self)


@runtime_checkable
class QueryBackend(Protocol):
    """The service-facing query plane (single world or sharded cluster)."""

    @property
    def duration_s(self) -> float:
        """The service horizon (end of the simulated day)."""
        ...

    def submit(self, request: "QueryRequest") -> "SessionHandle":
        """Submit one query; returns its handle (possibly rejected)."""
        ...

    def advance(self, until: float) -> None:
        """Advance the simulated clock(s) to absolute time ``until``."""
        ...

    def cancel(self, handle: "SessionHandle") -> None:
        """Tear one session down mid-run (idempotent)."""
        ...

    def stats(self) -> BackendStats:
        """A snapshot of the backend's counters."""
        ...

    def close(self) -> "WorkloadResult":
        """Run to the horizon, score every session, seal the backend."""
        ...


__all__ = ["BackendStats", "QueryBackend"]
