"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — one query session with chosen mode/seed/duration; prints the
  per-period summary and an ASCII fidelity strip.
* ``scenario`` — run a named declarative scenario from the registry (or a
  JSON file) through the service façade; ``--list`` shows the catalogue.
* ``sweep`` — fan a scenario across users x shards x fault-intensity x
  arrival axes, write ``SWEEP_<name>.json`` + a markdown table, and fail
  loudly when a metamorphic invariant breaks.
* ``fuzz`` — draw seeded randomized scenarios from strictly bounded
  ranges and run each through the sweep's metamorphic invariants.
* ``fig`` — regenerate one of the paper's figures (4-8) as a table.
* ``bench`` — time the hot-path scenarios, write ``BENCH_perf.json``, and
  optionally gate against a same-machine baseline report.
* ``profile`` — run one bench scenario under cProfile, dump the raw
  profile, and print the top-N hot functions (the ROADMAP profiling
  recipe as one command).
* ``analysis`` — print the Section 5 closed-form tables (paper vs ours).
* ``topology`` — render the sensor field, backbone and user path.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .api.requests import ACCURACY_LEVELS
from .experiments.config import (
    MODE_GREEDY,
    MODE_IDLE,
    MODE_JIT,
    MODE_NP,
    ExperimentConfig,
    QueryParams,
    paper_section62_config,
)
from .experiments.figures import (
    contention_analysis_table,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    storage_analysis_table,
)
from .experiments.reporting import format_table
from .experiments.runner import run_experiment
from .net.network import NetworkConfig
from .workload.arrivals import ARRIVAL_PROCESSES, ARRIVAL_STAGGERED


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MobiQuery reproduction (Lu et al., ICDCS 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one query session")
    run_p.add_argument(
        "--mode",
        choices=[MODE_JIT, MODE_GREEDY, MODE_NP, MODE_IDLE],
        default=MODE_JIT,
    )
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--duration", type=float, default=120.0)
    run_p.add_argument("--sleep-period", type=float, default=9.0)
    run_p.add_argument(
        "--users",
        type=int,
        default=1,
        help="concurrent mobile users sharing the network (default 1)",
    )
    run_p.add_argument(
        "--arrival",
        choices=list(ARRIVAL_PROCESSES),
        default=ARRIVAL_STAGGERED,
        help="how multi-user session starts are spread (default staggered)",
    )
    run_p.add_argument(
        "--spacing",
        type=float,
        default=2.5,
        help="arrival spacing / mean interarrival in seconds (default 2.5)",
    )
    run_p.add_argument(
        "--radius",
        type=float,
        default=150.0,
        help="query-area radius Rq in metres (default 150)",
    )
    run_p.add_argument(
        "--period",
        type=float,
        default=2.0,
        help="result period Tperiod in seconds (default 2)",
    )
    run_p.add_argument(
        "--freshness",
        type=float,
        default=1.0,
        help="data-freshness bound Tfresh in seconds (default 1; must "
        "not exceed the period)",
    )
    run_p.add_argument(
        "--accuracy",
        choices=list(ACCURACY_LEVELS),
        default="exact",
        help="answer accuracy: exact (full collection protocol, the "
        "default) or medium/coarse (bounded-error answers from the "
        "in-network summary plane)",
    )
    run_p.add_argument(
        "--shards",
        type=int,
        default=1,
        help="regional shards serving the fleet (default 1 = one world)",
    )
    run_p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for the sharded batch path (default 0)",
    )
    run_p.add_argument(
        "--faults",
        default=None,
        metavar="FILE",
        help="inject a fault plan from a JSON file (crashes, blackouts, "
        "radio degradations, worker kills); omitted = fault-free",
    )

    scen_p = sub.add_parser(
        "scenario", help="run a named declarative scenario via the service API"
    )
    scen_p.add_argument(
        "name",
        nargs="?",
        default=None,
        help="registry name (see --list) — omit with --list or --file",
    )
    scen_p.add_argument(
        "--list", action="store_true", help="show the scenario catalogue"
    )
    scen_p.add_argument(
        "--file", default=None, help="load a ScenarioSpec from a JSON file"
    )
    scen_p.add_argument(
        "--duration", type=float, default=None, help="override the duration (s)"
    )
    scen_p.add_argument(
        "--seed", type=int, default=None, help="override the seed"
    )
    scen_p.add_argument(
        "--shards",
        type=int,
        default=None,
        help="override the shard count (1 = single world, N = cluster)",
    )
    scen_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="override the cluster worker-process count",
    )
    scen_p.add_argument(
        "--accuracy",
        choices=list(ACCURACY_LEVELS),
        default=None,
        help="rewrite every request template's accuracy (exact / medium "
        "/ coarse) — how a scenario's exact twin runs",
    )

    sweep_p = sub.add_parser(
        "sweep",
        help="adversarial robustness sweep over users x shards x faults x arrivals",
    )
    sweep_p.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="base scenario registry name (see `repro scenario --list`)",
    )
    sweep_p.add_argument(
        "--file", default=None, help="load the base ScenarioSpec from a JSON file"
    )
    sweep_p.add_argument(
        "--axes",
        default=None,
        metavar="FILE",
        help="JSON file with the sweep axes "
        '({"users": [...], "shards": [...], "intensities": [...], '
        '"arrivals": [...]}); CLI axis flags override its entries',
    )
    sweep_p.add_argument(
        "--users", default=None, help="comma-separated fleet sizes, e.g. 4,8"
    )
    sweep_p.add_argument(
        "--shards", default=None, help="comma-separated shard counts, e.g. 1,2"
    )
    sweep_p.add_argument(
        "--intensities",
        default=None,
        help="comma-separated fault intensities in [0,1], e.g. 0,0.5,1",
    )
    sweep_p.add_argument(
        "--arrivals",
        default=None,
        help="comma-separated arrival processes (staggered, burst)",
    )
    sweep_p.add_argument(
        "--admissions",
        default=None,
        help="comma-separated admission policies "
        "(accept-all, per-area-cap, phase-assign)",
    )
    sweep_p.add_argument(
        "--accuracies",
        default=None,
        help="comma-separated accuracy levels (exact, medium, coarse) — "
        "covers the summary-served path in the fault grid",
    )
    sweep_p.add_argument(
        "--densities",
        default=None,
        help="comma-separated node counts, e.g. 150,200,300 "
        "(0 = the scenario's own density)",
    )
    sweep_p.add_argument(
        "--radio-ranges",
        default=None,
        help="comma-separated comm ranges in metres, e.g. 90,105,120 "
        "(0 = the scenario's own range)",
    )
    sweep_p.add_argument(
        "--duration", type=float, default=None, help="override the duration (s)"
    )
    sweep_p.add_argument(
        "--seed", type=int, default=None, help="override the seed"
    )
    sweep_p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for the grid (cells run serially by default)",
    )
    sweep_p.add_argument(
        "--out-dir",
        default=".",
        help="directory for SWEEP_<name>.json (default current directory)",
    )
    sweep_p.add_argument(
        "--name",
        default=None,
        help="report name (default: the base scenario's name)",
    )

    serve_p = sub.add_parser(
        "serve",
        help="run the always-on query daemon (HTTP/JSON wire API)",
    )
    serve_p.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="scenario registry name the daemon's backend runs "
        "(see `repro scenario --list`)",
    )
    serve_p.add_argument(
        "--file", default=None, help="load the ScenarioSpec from a JSON file"
    )
    serve_p.add_argument(
        "--duration", type=float, default=None, help="override the duration (s)"
    )
    serve_p.add_argument(
        "--seed", type=int, default=None, help="override the seed"
    )
    serve_p.add_argument(
        "--shards", type=int, default=None, help="override the shard count"
    )
    serve_p.add_argument(
        "--workers", type=int, default=None, help="override the worker count"
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8600)
    serve_p.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds to let live sessions finish on SIGTERM before "
        "force-cancelling (default 30)",
    )
    serve_p.add_argument(
        "--time-scale",
        type=float,
        default=None,
        help="simulated seconds per wall second (default 8; 0 = free-run)",
    )
    serve_p.add_argument(
        "--ring-capacity",
        type=int,
        default=256,
        help="per-session result buffer size (default 256)",
    )
    serve_p.add_argument(
        "--out-dir",
        default=".",
        help="directory for SERVE_<name>.json (default current directory)",
    )
    serve_p.add_argument(
        "--name",
        default=None,
        help="log/report name (default: the scenario's name)",
    )
    serve_p.add_argument(
        "--edge-rate",
        type=float,
        default=None,
        help="per-tenant admitted submissions per second "
        "(default: the scenario's edge_rate key, else 0 = edge off)",
    )
    serve_p.add_argument(
        "--edge-burst",
        type=float,
        default=None,
        help="per-tenant token-bucket burst (default: the scenario's "
        "edge_burst key; 0 = 2x the rate)",
    )
    serve_p.add_argument(
        "--max-live-sessions",
        type=int,
        default=None,
        help="shed new submissions (503 overloaded) above this many live "
        "sessions (default: the scenario's max_live_sessions key; "
        "0 = no ceiling)",
    )
    serve_p.add_argument(
        "--max-pump-lag",
        type=float,
        default=0.0,
        help="shed new submissions when the pacing pump lags this many "
        "wall seconds (0 = no ceiling)",
    )
    serve_p.add_argument(
        "--wal-flush",
        type=int,
        default=None,
        help="fsync the crash-safe op log every N ops (default: the "
        "scenario's wal_flush key, else 8; 1 = every op)",
    )

    slam_p = sub.add_parser(
        "slam",
        help="load-generate against a live `repro serve` daemon",
    )
    slam_p.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="scenario whose arrival process to replay over the wire",
    )
    slam_p.add_argument(
        "--file", default=None, help="load the ScenarioSpec from a JSON file"
    )
    slam_p.add_argument(
        "--sim-duration",
        type=float,
        default=None,
        help="the daemon's scenario duration override — must match what "
        "`repro serve` was started with, so request starts clamp the same",
    )
    slam_p.add_argument(
        "--url",
        default="http://127.0.0.1:8600",
        help="daemon base URL (default http://127.0.0.1:8600)",
    )
    slam_p.add_argument(
        "--rate", type=float, default=8.0, help="submissions per second"
    )
    slam_p.add_argument(
        "--clients", type=int, default=2, help="concurrent client identities"
    )
    slam_p.add_argument(
        "--duration",
        type=float,
        default=120.0,
        help="wall-clock budget in seconds (default 120)",
    )
    slam_p.add_argument(
        "--wait",
        type=float,
        default=0.5,
        help="long-poll wait per results call (default 0.5s)",
    )
    slam_p.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="per-request HTTP timeout in seconds (default 10)",
    )
    slam_p.add_argument(
        "--retries",
        type=int,
        default=3,
        help="bounded retries per request with decorrelated-jitter "
        "backoff (default 3; 0 = fail fast)",
    )
    slam_p.add_argument(
        "--seed",
        type=int,
        default=0,
        help="root seed of the clients' backoff jitter streams (default 0)",
    )
    slam_p.add_argument(
        "--out-dir",
        default=".",
        help="directory for SLAM_<name>.json (default current directory)",
    )
    slam_p.add_argument(
        "--name",
        default=None,
        help="report name (default: the scenario's name)",
    )

    replay_p = sub.add_parser(
        "replay",
        help="re-execute a SERVE_<name>.json submission log in-process and "
        "verify it reproduces the daemon's result fingerprints",
    )
    replay_p.add_argument(
        "log",
        help="path to a SERVE_<name>.json log (or a SERVE_<name>.wal "
        "with --partial)",
    )
    replay_p.add_argument(
        "--partial",
        action="store_true",
        help="treat the input as a crash-safe WAL (SERVE_<name>.wal) from "
        "a killed daemon: replay its flushed prefix twice and verify the "
        "two executions agree bit for bit",
    )

    fuzz_p = sub.add_parser(
        "fuzz",
        help="draw seeded randomized scenarios (strictly bounded) and run "
        "each through the sweep's metamorphic invariants",
    )
    fuzz_p.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="base scenario registry name (see `repro scenario --list`)",
    )
    fuzz_p.add_argument(
        "--file", default=None, help="load the base ScenarioSpec from a JSON file"
    )
    fuzz_p.add_argument(
        "--runs", type=int, default=3, help="cases to draw (default 3)"
    )
    fuzz_p.add_argument(
        "--seed",
        type=int,
        default=0,
        help="fuzz stream seed — same seed, same cases (default 0)",
    )
    fuzz_p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes per case's sweep grid (default serial)",
    )
    fuzz_p.add_argument(
        "--out-dir",
        default=".",
        help="directory for FUZZ_<name>.json (default current directory)",
    )
    fuzz_p.add_argument(
        "--name",
        default=None,
        help="report name (default: <base>-fuzz)",
    )

    fig_p = sub.add_parser("fig", help="regenerate a paper figure")
    fig_p.add_argument("number", type=int, choices=[4, 5, 6, 7, 8])
    fig_p.add_argument("--scale", choices=["quick", "paper"], default="quick")

    bench_p = sub.add_parser(
        "bench", help="time the hot-path scenarios and write BENCH_perf.json"
    )
    bench_p.add_argument("--scale", choices=["quick", "paper"], default="quick")
    bench_p.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="runs per scenario; the fastest is reported (default 3)",
    )
    bench_p.add_argument(
        "--output",
        default="BENCH_perf.json",
        help="where to write the perf report (default BENCH_perf.json)",
    )
    bench_p.add_argument(
        "--baseline",
        default=None,
        help="reference BENCH_perf.json from the same machine; exit non-zero "
        "on a >threshold events/sec regression",
    )
    bench_p.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed fractional events/sec regression vs --baseline (default 0.20)",
    )
    bench_p.add_argument(
        "--both-paths",
        action="store_true",
        help="also time each scenario over the pure-Python reference "
        "physics (REPRO_VECTORIZE=reference) and record reference_wall_s "
        "next to the accelerated timing",
    )
    bench_p.add_argument(
        "--cluster",
        action="store_true",
        help="time cluster_scale_64users (shards=1 vs sharded+workers), "
        "verify the single-shard fingerprint, and merge a 'cluster' "
        "section into the report",
    )

    prof_p = sub.add_parser(
        "profile",
        help="profile a bench scenario with cProfile",
        epilog="The reception physics has two bit-identical paths; profile "
        "the pure-Python one with REPRO_VECTORIZE=reference in the "
        "environment and compare (see 'Reading the vectorized-vs-reference "
        "timings' in examples/README.md).",
    )
    prof_p.add_argument(
        "scenario",
        help="canonical scenario name (as in `repro bench`), e.g. fig4_jit",
    )
    prof_p.add_argument("--scale", choices=["quick", "paper"], default="quick")
    prof_p.add_argument(
        "--duration",
        type=float,
        default=None,
        help="override the scenario duration in seconds (quick looks)",
    )
    prof_p.add_argument(
        "--sort",
        default="tottime",
        help="pstats sort key (default tottime; e.g. cumtime, ncalls)",
    )
    prof_p.add_argument(
        "--top",
        type=int,
        default=25,
        help="how many functions to print (default 25)",
    )
    prof_p.add_argument(
        "--out",
        default=None,
        help="where to dump the raw profile (default /tmp/repro_prof.out)",
    )

    sub.add_parser("analysis", help="Section 5 closed-form tables")

    topo_p = sub.add_parser("topology", help="render the sensor field")
    topo_p.add_argument("--seed", type=int, default=1)
    topo_p.add_argument("--width", type=int, default=72)
    return parser


def _cmd_run_cluster(
    args: argparse.Namespace, config: ExperimentConfig, faults=None
) -> int:
    """``repro run --shards N``: the same fleet on a regional cluster."""
    from .api.requests import QueryRequest
    from .cluster.service import ClusterService
    from .sim.rng import RandomStreams
    from .workload.arrivals import arrival_times

    cluster = ClusterService(
        config, shards=args.shards, workers=max(args.workers, 0), faults=faults
    )
    starts = arrival_times(
        config.num_users,
        process=config.arrival_process,
        spacing_s=config.arrival_spacing_s,
        rng=RandomStreams(config.seed).stream("arrivals"),
    )
    for start in starts:
        cluster.submit(
            QueryRequest(
                radius_m=config.query.radius_m,
                period_s=config.query.period_s,
                freshness_s=config.query.freshness_s,
                start_s=start,
                accuracy=config.query.accuracy,
            )
        )
    workload = cluster.close()
    stats = cluster.stats()
    print(
        f"mode={args.mode} seed={args.seed} duration={args.duration:.0f}s "
        f"shards={cluster.num_shards} partitioner={cluster.partitioner.name} "
        f"users={config.num_users} backbone={stats.backbone_size}"
        + (" (parallel workers)" if cluster.parallel_used else "")
    )
    print("\n user  shard  start  periods  success  fidelity")
    print(" ----  -----  -----  -------  -------  --------")
    for handle in cluster.admitted_handles():
        session = handle.result()
        m = session.metrics
        print(f" {session.user_id:>4}  {cluster.shard_of(handle):>5}  "
              f"{session.start_s:4.1f}s  {m.num_periods:>7}  "
              f"{m.success_ratio():6.1%}  {m.mean_fidelity():7.1%}")
    print(f"\nfleet mean success: {workload.mean_success_ratio():.1%}")
    print(f"fleet worst user  : {workload.min_success_ratio():.1%}")
    if faults is not None and not faults.empty:
        degraded = sum(s.degraded_periods for s in workload.sessions)
        print(f"degraded periods  : {degraded} "
              f"(collector re-election / recovery windows)")
    print(f"frames on air: {stats.frames_sent}, collided receptions: "
          f"{stats.frames_collided}, events: {stats.events_executed}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        if args.shards < 1:
            raise ValueError(f"--shards must be >= 1, got {args.shards}")
        config = ExperimentConfig(
            mode=args.mode,
            seed=args.seed,
            duration_s=args.duration,
            network=NetworkConfig(sleep_period_s=args.sleep_period),
            query=QueryParams(
                radius_m=args.radius,
                period_s=args.period,
                freshness_s=args.freshness,
                accuracy=args.accuracy,
            ),
            num_users=args.users,
            arrival_process=args.arrival,
            arrival_spacing_s=args.spacing,
        )
        faults = None
        if args.faults:
            from .faults.plan import load_fault_file

            faults = load_fault_file(args.faults)
        if args.shards > 1:
            return _cmd_run_cluster(args, config, faults)
        if args.workers > 0:
            print(
                "repro run: note: --workers only applies with --shards >= 2; "
                "running one world in-process",
                file=sys.stderr,
            )
        result = run_experiment(config, faults=faults)
    except (OSError, ValueError) as exc:
        print(f"repro run: error: {exc}", file=sys.stderr)
        return 2
    print(f"mode={args.mode} seed={args.seed} duration={args.duration:.0f}s "
          f"sleep={args.sleep_period:.0f}s backbone={result.backbone_size}"
          + (f" users={args.users} arrival={args.arrival}" if args.users > 1 else ""))
    if result.metrics is None:
        print(f"idle run: mean sleeper power "
              f"{result.power.mean_sleeper_power_w * 1000:.0f} mW")
        return 0
    if len(result.sessions) > 1:
        print("\n user  start  periods  success  fidelity")
        print(" ----  -----  -------  -------  --------")
        for session in result.sessions:
            m = session.metrics
            print(f" {session.user_id:>4}  {session.start_s:4.1f}s  "
                  f"{m.num_periods:>7}  {m.success_ratio():6.1%}  "
                  f"{m.mean_fidelity():7.1%}")
        print(f"\nfleet mean success: {result.mean_user_success_ratio:.1%}")
        print(f"fleet worst user  : {result.min_user_success_ratio:.1%}")
        if faults is not None and not faults.empty:
            degraded = sum(s.degraded_periods for s in result.sessions)
            print(f"degraded periods  : {degraded} "
                  f"(collector re-election / recovery windows)")
        # network-wide numbers, not per-user
        print(f"prefetch len  : {result.max_prefetch_length} (worst chain)")
        print(f"sleeper power : {result.power.mean_sleeper_power_w * 1000:.0f} mW")
        print("\nuser 0 (baseline-aligned session):")
    metrics = result.metrics
    print(f"success ratio : {metrics.success_ratio():.1%}")
    print(f"mean fidelity : {metrics.mean_fidelity():.1%}")
    print(f"warmup periods: {metrics.warmup_periods_observed()}")
    if len(result.sessions) == 1:
        print(f"prefetch len  : {result.max_prefetch_length}")
        print(f"sleeper power : {result.power.mean_sleeper_power_w * 1000:.0f} mW")
        if faults is not None and not faults.empty:
            print(f"degraded periods: {result.sessions[0].degraded_periods} "
                  f"(collector re-election / recovery windows)")
    from .experiments.viz import render_fidelity_strip

    print("\nfidelity per period:")
    print(render_fidelity_strip(metrics.fidelity_series()))
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from .api.scenarios import (
        get_scenario,
        list_scenarios,
        load_scenario_file,
        run_scenario,
    )

    if args.list:
        print("available scenarios:\n")
        for spec in list_scenarios():
            print(f"  {spec.name:<20} {len(spec.requests):>2} request "
                  f"template(s), {spec.duration_s:.0f}s")
            print(f"  {'':<20} {spec.description}")
        return 0
    try:
        if args.file:
            spec = load_scenario_file(args.file)
        elif args.name:
            spec = get_scenario(args.name)
        else:
            print(
                "repro scenario: error: give a scenario name, --file, or --list",
                file=sys.stderr,
            )
            return 2
        effective_shards = args.shards if args.shards is not None else spec.shards
        effective_workers = (
            args.workers if args.workers is not None else spec.workers
        )
        if effective_workers > 0 and effective_shards <= 1:
            print(
                "repro scenario: note: workers only apply to a sharded "
                "cluster (--shards >= 2); running one world in-process",
                file=sys.stderr,
            )
        result = run_scenario(
            spec,
            duration_s=args.duration,
            seed=args.seed,
            shards=args.shards,
            workers=args.workers,
            accuracy=args.accuracy,
        )
    except (KeyError, OSError, ValueError, TypeError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"repro scenario: error: {message}", file=sys.stderr)
        return 2
    spec = result.scenario
    print(f"scenario={spec.name} mode={spec.mode} seed={spec.seed} "
          f"duration={spec.duration_s:.0f}s backbone={result.backbone_size}"
          + (f" shards={result.shards}" if result.shards > 1 else ""))
    if spec.description:
        print(spec.description)
    print("\n user  status    start  period  radius  agg    success  fidelity")
    print(" ----  --------  -----  ------  ------  -----  -------  --------")
    scored = {s.user_id: s for s in result.workload.sessions}
    for handle in result.handles:
        if not handle.accepted:
            reason = handle.reason or "rejected"
            print(f"    -  rejected  {'-':>5}  {'-':>6}  {'-':>6}  {'-':<5}"
                  f"  {reason}")
            continue
        spec_u = handle.spec
        session = scored.get(spec_u.user_id)
        m = session.metrics if session else None
        print(f" {spec_u.user_id:>4}  {handle.status:<8}  "
              f"{spec_u.start_s:4.1f}s  {spec_u.period_s:5.1f}s  "
              f"{spec_u.radius_m:5.0f}m  {spec_u.aggregation.value:<5}  "
              f"{m.success_ratio():6.1%}  {m.mean_fidelity():7.1%}"
              if m else f" {spec_u.user_id:>4}  {handle.status:<8}")
    print(f"\nadmitted {result.admitted} / {len(result.handles)} sessions"
          + (f" ({result.rejected} rejected by admission control)"
             if result.rejected else ""))
    if result.workload.sessions:
        print(f"fleet mean success: {result.mean_success:.1%}")
        print(f"fleet worst user  : {result.min_success:.1%}")
    print(f"frames on air: {result.frames_sent}, collided receptions: "
          f"{result.frames_collided}, events: {result.events_executed}")
    return 0


def _parse_axis_list(text: str, cast, flag: str) -> tuple:
    """Parse a ``--users 4,8``-style comma list into a tuple of ``cast``."""
    try:
        values = tuple(cast(tok.strip()) for tok in text.split(",") if tok.strip())
    except ValueError:
        raise ValueError(
            f"{flag} expects a comma-separated list of "
            f"{cast.__name__}s, got {text!r}"
        )
    if not values:
        raise ValueError(f"{flag} expects at least one value, got {text!r}")
    return values


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from .api.scenarios import get_scenario, load_scenario_file
    from .faults.sweep import SweepAxes, run_sweep, write_sweep_outputs

    try:
        if args.file:
            base = load_scenario_file(args.file)
        elif args.scenario:
            base = get_scenario(args.scenario)
        else:
            raise ValueError(
                "give a base scenario name or --file "
                "(see `repro scenario --list`)"
            )
        overrides = {}
        if args.duration is not None:
            overrides["duration_s"] = args.duration
        if args.seed is not None:
            overrides["seed"] = args.seed
        if overrides:
            base = base.with_overrides(**overrides)
        axes_data: dict = {}
        if args.axes:
            with open(args.axes, "r", encoding="utf-8") as fh:
                axes_data = json.load(fh)
            if not isinstance(axes_data, dict):
                raise ValueError(
                    f"{args.axes} must hold a JSON object of sweep axes"
                )
        if args.users:
            axes_data["users"] = _parse_axis_list(args.users, int, "--users")
        if args.shards:
            axes_data["shards"] = _parse_axis_list(args.shards, int, "--shards")
        if args.intensities:
            axes_data["intensities"] = _parse_axis_list(
                args.intensities, float, "--intensities"
            )
        if args.arrivals:
            axes_data["arrivals"] = tuple(
                tok.strip() for tok in args.arrivals.split(",") if tok.strip()
            )
        if args.admissions:
            axes_data["admissions"] = tuple(
                tok.strip() for tok in args.admissions.split(",") if tok.strip()
            )
        if args.accuracies:
            axes_data["accuracies"] = tuple(
                tok.strip() for tok in args.accuracies.split(",") if tok.strip()
            )
        if args.densities:
            axes_data["densities"] = _parse_axis_list(
                args.densities, int, "--densities"
            )
        if args.radio_ranges:
            axes_data["radio_ranges"] = _parse_axis_list(
                args.radio_ranges, float, "--radio-ranges"
            )
        axes = SweepAxes.from_dict(axes_data) if axes_data else SweepAxes()
        print(
            f"sweep base={base.name} cells={axes.cell_count()} "
            f"workers={max(args.workers, 0)}",
            file=sys.stderr,
        )
        result = run_sweep(
            base, axes, workers=max(args.workers, 0), name=args.name
        )
    except (KeyError, OSError, ValueError, TypeError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"repro sweep: error: {message}", file=sys.stderr)
        return 2
    print(result.markdown_table())
    path = write_sweep_outputs(result, args.out_dir)
    print(f"\nsweep report written to {path} ({len(result.rows)} cells)")
    if result.violations:
        for violation in result.violations:
            print(f"repro sweep: INVARIANT VIOLATED: {violation}", file=sys.stderr)
        return 3
    print("metamorphic invariants hold: fault-monotonicity, "
          "shards1-identity, churn-no-leak, admission-no-harm, "
          "density-monotonicity")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .api.scenarios import get_scenario, load_scenario_file
    from .faults.fuzz import markdown_summary, run_fuzz, write_fuzz_outputs

    try:
        if args.file:
            base = load_scenario_file(args.file)
        elif args.scenario:
            base = get_scenario(args.scenario)
        else:
            raise ValueError(
                "give a base scenario name or --file "
                "(see `repro scenario --list`)"
            )
        print(
            f"fuzz base={base.name} runs={args.runs} seed={args.seed}",
            file=sys.stderr,
        )
        result = run_fuzz(
            base,
            runs=args.runs,
            seed=args.seed,
            workers=max(args.workers, 0),
            name=args.name,
        )
    except (KeyError, OSError, ValueError, TypeError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"repro fuzz: error: {message}", file=sys.stderr)
        return 2
    print(markdown_summary(result))
    path = write_fuzz_outputs(result, args.out_dir)
    cells = sum(case["cells"] for case in result.cases)
    print(f"\nfuzz report written to {path} ({result.runs} cases, "
          f"{cells} sweep cells)")
    if result.violations:
        for violation in result.violations:
            print(
                f"repro fuzz: INVARIANT VIOLATED: {violation}", file=sys.stderr
            )
        return 3
    print(f"metamorphic invariants hold across all {result.runs} drawn "
          f"cases (replay with --seed {result.seed})")
    return 0


def _load_spec_for_daemon(args: argparse.Namespace, command: str):
    """Resolve the scenario a serve/slam command names, with overrides."""
    from .api.scenarios import get_scenario, load_scenario_file

    if args.file:
        spec = load_scenario_file(args.file)
    elif args.scenario:
        spec = get_scenario(args.scenario)
    else:
        raise ValueError(
            "give a scenario name or --file (see `repro scenario --list`)"
        )
    overrides = {}
    duration = getattr(args, "duration", None)
    if command == "slam":
        duration = args.sim_duration
    if duration is not None:
        overrides["duration_s"] = duration
    for key, attr in (("seed", "seed"), ("shards", "shards"),
                      ("workers", "workers")):
        value = getattr(args, attr, None)
        if value is not None:
            overrides[key] = value
    return spec.with_overrides(**overrides) if overrides else spec


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve.daemon import DEFAULT_TIME_SCALE, run_serve
    from .serve.edge import EdgeConfig

    try:
        spec = _load_spec_for_daemon(args, "serve")
        if args.drain_timeout < 0:
            raise ValueError(
                f"--drain-timeout must be >= 0, got {args.drain_timeout}"
            )
        time_scale = (
            args.time_scale if args.time_scale is not None else DEFAULT_TIME_SCALE
        )
        # Flags override the scenario's daemon-posture keys; unset flags
        # fall back to whatever the spec declares.
        edge = EdgeConfig(
            rate=args.edge_rate if args.edge_rate is not None else spec.edge_rate,
            burst=(
                args.edge_burst if args.edge_burst is not None else spec.edge_burst
            ),
            max_live_sessions=(
                args.max_live_sessions
                if args.max_live_sessions is not None
                else spec.max_live_sessions
            ),
            max_pump_lag_s=args.max_pump_lag,
        )
        wal_flush = (
            args.wal_flush if args.wal_flush is not None else spec.wal_flush
        )
        return run_serve(
            spec,
            host=args.host,
            port=args.port,
            drain_timeout_s=args.drain_timeout,
            time_scale=time_scale,
            ring_capacity=args.ring_capacity,
            out_dir=args.out_dir,
            name=args.name,
            edge=edge,
            wal_flush_every=wal_flush,
        )
    except (KeyError, OSError, ValueError, TypeError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"repro serve: error: {message}", file=sys.stderr)
        return 2


def _cmd_slam(args: argparse.Namespace) -> int:
    from .serve.errors import EXIT_FAILURE, WireError
    from .serve.slam import (
        SlamConfig,
        markdown_table,
        run_slam,
        write_slam_outputs,
    )

    try:
        spec = _load_spec_for_daemon(args, "slam")
        config = SlamConfig(
            url=args.url,
            rate=args.rate,
            clients=args.clients,
            duration_s=args.duration,
            wait_s=args.wait,
            timeout_s=args.timeout,
            retries=args.retries,
            seed=args.seed,
        )
    except (KeyError, OSError, ValueError, TypeError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"repro slam: error: {message}", file=sys.stderr)
        return 2
    try:
        report = run_slam(spec, config)
    except WireError as exc:
        print(f"repro slam: error: {exc.code}: {exc.message}", file=sys.stderr)
        return exc.exit_code
    print(markdown_table(report))
    path = write_slam_outputs(report, args.out_dir, name=args.name)
    print(f"\nslam report written to {path}")
    counts = report["counts"]
    if counts["errors"]:
        for entry in report["errors"][:10]:
            print(f"repro slam: error entry: {entry}", file=sys.stderr)
        return EXIT_FAILURE
    if counts["admitted"] == 0:
        print(
            "repro slam: error: the daemon admitted no sessions",
            file=sys.stderr,
        )
        return EXIT_FAILURE
    return 0


def _cmd_replay_partial(args: argparse.Namespace) -> int:
    """``repro replay --partial``: verify a killed daemon's WAL prefix."""
    from .serve.log import load_partial_log, verify_partial_log

    try:
        data = load_partial_log(args.log)
    except (OSError, ValueError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"repro replay: error: {message}", file=sys.stderr)
        return 2
    try:
        ok, first, second = verify_partial_log(data)
    except (KeyError, ValueError, TypeError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"repro replay: error: {message}", file=sys.stderr)
        return 2
    ops = data["ops"]
    submits = sum(1 for op in ops if op.get("op") == "submit")
    if not ok:
        print(
            "repro replay: REPLAY MISMATCH: two executions of the flushed "
            "WAL prefix diverged — the log is not deterministic",
            file=sys.stderr,
        )
        print(f"  first : {first}", file=sys.stderr)
        print(f"  second: {second}", file=sys.stderr)
        return 3
    tail = (
        " (an unflushed tail line was truncated by the crash, as designed)"
        if data["wal_truncated_tail"]
        else ""
    )
    print(
        f"partial replay ok: flushed prefix of {submits} submissions, "
        f"{len(ops) - submits} cancels replays bit-identically — "
        f"{len(first['sessions'])} scored sessions, frame counters "
        f"(sent={first['frames_sent']}, collided={first['frames_collided']}, "
        f"delivered={first['frames_delivered']}){tail}"
    )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import json

    from .serve.log import verify_submission_log

    if args.partial:
        return _cmd_replay_partial(args)
    try:
        with open(args.log, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if not isinstance(data, dict):
            raise ValueError(f"{args.log} must hold a JSON object")
    except (OSError, ValueError) as exc:
        print(f"repro replay: error: {exc}", file=sys.stderr)
        return 2
    try:
        ok, recorded, replayed = verify_submission_log(data)
    except (KeyError, ValueError, TypeError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"repro replay: error: {message}", file=sys.stderr)
        return 2
    if recorded is None:
        print(
            f"repro replay: error: {args.log} carries no fingerprints to "
            "verify against",
            file=sys.stderr,
        )
        return 2
    ops = data.get("ops", [])
    submits = sum(1 for op in ops if op.get("op") == "submit")
    if not ok:
        print(
            "repro replay: REPLAY MISMATCH: the in-process replay diverged "
            "from the live run",
            file=sys.stderr,
        )
        print(f"  recorded: {recorded}", file=sys.stderr)
        print(f"  replayed: {replayed}", file=sys.stderr)
        return 3
    print(
        f"replay ok: {submits} submissions, {len(ops) - submits} cancels — "
        f"{len(replayed['sessions'])} scored sessions and frame counters "
        f"(sent={replayed['frames_sent']}, "
        f"collided={replayed['frames_collided']}, "
        f"delivered={replayed['frames_delivered']}) reproduced bit-identically"
    )
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    number = args.number
    scale = args.scale
    if number == 4:
        rows = run_fig4(scale)
        print(format_table(
            "Figure 4 — success ratio",
            ["mode", "Tsleep", "speed", "success", "fidelity"],
            [(r.mode, r.sleep_period_s, f"{r.speed_range}", r.success_ratio,
              r.mean_fidelity) for r in rows],
        ))
    elif number == 5:
        from .experiments.viz import render_fidelity_strip

        for trace in run_fig5(scale):
            print(f"\nFigure 5 — {trace.mode} "
                  f"(warmup {trace.warmup_periods} periods)")
            print(render_fidelity_strip(trace.series))
    elif number == 6:
        rows = run_fig6(scale)
        print(format_table(
            "Figure 6 — success vs advance time",
            ["Tsleep", "Ta", "success"],
            [(r.sleep_period_s, r.advance_time_s, r.success_ratio) for r in rows],
        ))
    elif number == 7:
        rows = run_fig7(scale)
        print(format_table(
            "Figure 7 — motion changes / location error",
            ["curve", "interval", "success"],
            [(r.curve, r.change_interval_s, r.success_ratio) for r in rows],
        ))
    else:
        rows = run_fig8(scale)
        print(format_table(
            "Figure 8 — sleeper power",
            ["variant", "Tsleep", "power (W)"],
            [(r.variant, r.sleep_period_s, r.sleeper_power_w) for r in rows],
        ))
    return 0


def _cmd_bench_cluster(args: argparse.Namespace) -> int:
    """``repro bench --cluster``: the scale-out bench + identity gate."""
    import os

    from .experiments.perf import (
        cluster_fingerprint_mismatches,
        format_cluster_report,
        load_previous_report,
        run_cluster_suite,
        write_report,
    )

    cluster_report = run_cluster_suite(
        scale=args.scale, repeats=args.repeats, both_paths=args.both_paths
    )
    # Merge into the existing report so the cluster numbers travel in the
    # same BENCH_perf.json artifact as the hot-path scenarios.  A missing
    # or corrupt prior file fails soft: the rewrite proceeds, but losing
    # the previously pinned scenario sections is said out loud, never
    # silent (and never a crash).
    report, warning = load_previous_report(args.output)
    if report is None:
        report = {"scale": args.scale, "scenarios": {}}
        if warning is not None:
            print(
                f"repro bench: warning: {warning}; rewriting without the "
                "prior hot-path scenario sections",
                file=sys.stderr,
            )
    report["cluster"] = cluster_report
    write_report(report, args.output)
    print(format_cluster_report(cluster_report))
    print(f"\ncluster section merged into {args.output}")
    failures = cluster_fingerprint_mismatches(cluster_report)
    if failures:
        for failure in failures:
            print(f"repro bench: DETERMINISM MISMATCH: {failure}", file=sys.stderr)
        return 3
    speedup = cluster_report["speedup_sharded_vs_single"]
    if (os.cpu_count() or 1) > 1:
        # Structural gate, not a noise gate: on shared runners a single
        # timing sample can wobble well past 1.0x, so only a sharded run
        # 20%+ slower than one world fails (that magnitude means the
        # cluster path itself regressed, not the machine).
        if speedup < 0.8:
            print(
                f"repro bench: CLUSTER REGRESSION: sharded run is "
                f"{speedup}x vs one world on a multi-core machine "
                f"(floor 0.8x)",
                file=sys.stderr,
            )
            return 3
        if speedup < 1.0:
            print(
                f"repro bench: warning: sharded speedup only {speedup}x "
                f"(timing noise or an overloaded machine)",
                file=sys.stderr,
            )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .experiments.perf import (
        check_regressions,
        fingerprint_mismatches,
        format_perf_report,
        load_previous_report,
        load_report,
        run_perf_suite,
        write_report,
    )

    if args.repeats < 1:
        print("repro bench: error: --repeats must be >= 1", file=sys.stderr)
        return 2
    if args.cluster:
        return _cmd_bench_cluster(args)
    baseline_report = None
    if args.baseline:
        # Load (and validate) the reference before the multi-second suite
        # runs, so a typo'd path fails fast with a clean message.
        try:
            baseline_report = load_report(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"repro bench: error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
    report = run_perf_suite(
        scale=args.scale, repeats=args.repeats, both_paths=args.both_paths
    )
    # Keep a previously merged cluster section (repro bench --cluster)
    # alive across hot-path re-measurements of the same artifact.  A
    # corrupt prior file must not crash the merge (json.load can return a
    # non-dict) and must not silently cost the cluster section: fail soft
    # with a warning and rewrite fresh.
    previous, warning = load_previous_report(args.output)
    if warning is not None:
        print(
            f"repro bench: warning: {warning}; rewriting without the "
            "prior cluster section",
            file=sys.stderr,
        )
    if previous is not None and "cluster" in previous:
        report["cluster"] = previous["cluster"]
    write_report(report, args.output)
    print(format_perf_report(report))
    print(f"\nreport written to {args.output}")
    failures = fingerprint_mismatches(report)
    if failures:
        for failure in failures:
            print(f"repro bench: DETERMINISM MISMATCH: {failure}", file=sys.stderr)
        return 3
    if baseline_report is not None:
        regressions = check_regressions(
            report, baseline_report, threshold=args.threshold
        )
        if regressions:
            for regression in regressions:
                print(f"repro bench: PERF REGRESSION: {regression}", file=sys.stderr)
            return 3
        print(f"no regressions vs {args.baseline} (threshold {args.threshold:.0%})")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import pstats

    from .experiments.perf import DEFAULT_PROFILE_PATH, profile_scenario

    out_path = args.out or DEFAULT_PROFILE_PATH
    if args.top < 1:
        print("repro profile: error: --top must be >= 1", file=sys.stderr)
        return 2
    try:
        # Validate the sort key on an empty Stats BEFORE the (multi-second
        # to multi-minute) profiled run, so a typo fails instantly.
        pstats.Stats().sort_stats(args.sort)
    except KeyError:
        print(
            f"repro profile: error: invalid --sort key {args.sort!r} "
            "(try tottime, cumtime, ncalls)",
            file=sys.stderr,
        )
        return 2
    try:
        stats = profile_scenario(
            args.scenario,
            scale=args.scale,
            duration_s=args.duration,
            out_path=out_path,
        )
    except (KeyError, ValueError) as exc:
        # KeyError: unknown scenario; ValueError: a --duration the
        # scenario's config rejects (negative, shorter than one period).
        message = exc.args[0] if exc.args else exc
        print(f"repro profile: error: {message}", file=sys.stderr)
        return 2
    stats.sort_stats(args.sort)
    stats.print_stats(args.top)
    print(f"raw profile written to {out_path} "
          f"(inspect with python -m pstats {out_path})")
    return 0


def _cmd_analysis() -> int:
    print(format_table(
        "Section 5.2 — storage cost",
        ["quantity", "paper", "ours"],
        [(r.quantity, r.paper_value, r.our_value) for r in storage_analysis_table()],
    ))
    print()
    print(format_table(
        "Section 5.4 — network contention",
        ["quantity", "paper", "ours"],
        [(r.quantity, r.paper_value, r.our_value) for r in contention_analysis_table()],
    ))
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    from .experiments.runner import _make_user_path
    from .experiments.viz import render_field
    from .power.ccp import CcpProtocol
    from .sim.kernel import Simulator
    from .sim.rng import RandomStreams
    from .net.network import build_network

    config = ExperimentConfig(seed=args.seed, duration_s=200.0)
    sim = Simulator()
    streams = RandomStreams(args.seed)
    network = build_network(sim, config.network, streams)
    CcpProtocol().apply(network, streams)
    path = _make_user_path(config, streams)
    area = config_spec_area(config, path)
    print(render_field(network, width=args.width, path=path, area=area,
                       user=path.position_at(0.0)))
    print(f"\nbackbone: {len(network.active_nodes)}/{config.network.n_nodes} nodes")
    return 0


def config_spec_area(config: ExperimentConfig, path):
    """The query area at the session start (for the topology view)."""
    from .core.query import QuerySpec

    spec = QuerySpec(
        radius_m=config.query.radius_m,
        period_s=config.query.period_s,
        freshness_s=config.query.freshness_s,
        lifetime_s=config.duration_s,
    )
    return spec.area_at(path.position_at(0.0), path.velocity_at(0.0))


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "slam":
        return _cmd_slam(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "fig":
        return _cmd_fig(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "analysis":
        return _cmd_analysis()
    if args.command == "topology":
        return _cmd_topology(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
