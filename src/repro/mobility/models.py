"""User mobility models.

The paper's evaluation moves the user with a random-direction model: start
at a corner of the region, pick a random direction and a speed uniform in a
range, change both every ``change_interval`` seconds, stay inside the field
(Sections 6.2/6.3).  The model generates the *entire true trajectory* up
front as a :class:`PiecewisePath`; the proxy, predictor and metrics all
read positions off it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.shapes import Rect
from ..geometry.vec import Vec2
from .path import PiecewisePath, Waypoint


@dataclass(frozen=True)
class RandomDirectionConfig:
    """Parameters of the paper's user motion.

    Attributes:
        speed_range: uniform speed range in m/s — the paper sweeps
            (3, 5) walking, (6, 10) running, (16, 20) vehicle.
        change_interval_s: seconds between direction/speed changes (50 s in
            Section 6.2, 42–210 s in Section 6.3).
        margin_m: keep-out border so the query area is not mostly outside
            the field.
    """

    speed_range: Tuple[float, float] = (3.0, 5.0)
    change_interval_s: float = 50.0
    margin_m: float = 20.0

    def __post_init__(self) -> None:
        lo, hi = self.speed_range
        if not 0 < lo <= hi:
            raise ValueError(f"bad speed range {self.speed_range}")
        if self.change_interval_s <= 0:
            raise ValueError("change interval must be > 0")


def random_direction_path(
    region: Rect,
    duration_s: float,
    config: RandomDirectionConfig,
    rng: np.random.Generator,
    start: Optional[Vec2] = None,
) -> PiecewisePath:
    """Generate a random-direction trajectory inside ``region``.

    Starts at ``start`` (default: near the region's lower-left corner, as in
    the paper).  Each leg lasts ``change_interval_s``; direction is sampled
    until the leg's endpoint stays inside the margin-inset region (rejection
    sampling, with a pull toward the centre if a corner traps the user).
    """
    inset = Rect(
        region.x_min + config.margin_m,
        region.y_min + config.margin_m,
        region.x_max - config.margin_m,
        region.y_max - config.margin_m,
    )
    if start is None:
        start = Vec2(inset.x_min, inset.y_min)
    position = inset.clamp(start)
    waypoints: List[Waypoint] = [Waypoint(0.0, position)]
    t = 0.0
    while t < duration_s:
        leg = min(config.change_interval_s, duration_s - t)
        velocity = _sample_leg_velocity(position, inset, leg, config, rng)
        position = position + velocity * leg
        t += leg
        waypoints.append(Waypoint(t, position))
    return PiecewisePath(waypoints)


def _sample_leg_velocity(
    position: Vec2,
    inset: Rect,
    leg_s: float,
    config: RandomDirectionConfig,
    rng: np.random.Generator,
) -> Vec2:
    lo, hi = config.speed_range
    for _ in range(64):
        speed = float(rng.uniform(lo, hi))
        angle = float(rng.uniform(0.0, 2.0 * math.pi))
        velocity = Vec2.from_polar(speed, angle)
        if inset.contains(position + velocity * leg_s):
            return velocity
    # Trapped (tiny region / long leg): head for the centre at minimum
    # speed, clamped so the endpoint stays inside.
    to_center = inset.center() - position
    distance = to_center.norm()
    if distance == 0.0:
        return Vec2.zero()
    speed = min(lo, distance / leg_s)
    return to_center.normalized() * speed


def patrol_path(
    waypoints: Sequence[Vec2],
    speed: float,
    start_time: float = 0.0,
    loops: int = 1,
) -> PiecewisePath:
    """Constant-speed patrol through fixed waypoints (for examples).

    Visits each waypoint in order, ``loops`` times, at ``speed`` m/s.
    """
    if len(waypoints) < 2:
        raise ValueError("patrol needs at least two waypoints")
    if speed <= 0:
        raise ValueError("patrol speed must be > 0")
    points: List[Waypoint] = [Waypoint(start_time, waypoints[0])]
    t = start_time
    route = list(waypoints) * loops
    previous = route[0]
    for target in route[1:]:
        hop = previous.distance_to(target)
        if hop == 0.0:
            continue
        t += hop / speed
        points.append(Waypoint(t, target))
        previous = target
    return PiecewisePath(points)
