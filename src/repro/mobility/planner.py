"""Planner-style motion profiles: exact paths with a configurable lead time.

A motion planner (a robot that controls its own movement, Section 4.1.1)
knows each upcoming leg exactly and can hand the profile to MobiQuery
``Ta`` seconds before the leg starts.  Negative ``Ta`` models late delivery
of otherwise-exact profiles — the pure "advance time" axis the paper sweeps
in Figure 6 (``Ta`` from -6 s to 18 s) without conflating prediction error.
"""

from __future__ import annotations

from typing import List

from .path import PiecewisePath
from .profile import MotionProfile, ProfileArrival, ProfileProvider


class FullKnowledgeProvider(ProfileProvider):
    """One exact profile covering the whole run, delivered at t=0.

    This is the Section 6.2 setting: "the motion profile that specifies the
    complete user path is provided to MobiQuery at the beginning of each
    simulation".
    """

    def __init__(self, true_path: PiecewisePath, duration_s: float) -> None:
        if duration_s <= 0:
            raise ValueError("duration must be > 0")
        self.true_path = true_path
        self.duration_s = duration_s

    def arrivals(self) -> List[ProfileArrival]:
        profile = MotionProfile(
            path=self.true_path,
            ts=0.0,
            validity_s=self.duration_s,
            tg=0.0,
        )
        return [ProfileArrival(time=0.0, profile=profile)]


class PlannerProfileProvider(ProfileProvider):
    """One exact profile per motion leg, arriving ``Ta`` before the leg.

    For a leg starting at change time ``c`` the profile has ``ts = c``,
    ``tg = c - Ta`` and covers the leg exactly; it physically arrives at
    ``max(0, tg)`` (nothing can arrive before the run starts, which is why
    even large ``Ta`` keeps the paper's *initial* warmup phase).
    """

    def __init__(
        self,
        true_path: PiecewisePath,
        duration_s: float,
        advance_time_s: float,
    ) -> None:
        if duration_s <= 0:
            raise ValueError("duration must be > 0")
        self.true_path = true_path
        self.duration_s = duration_s
        self.advance_time_s = advance_time_s

    def _leg_boundaries(self) -> List[float]:
        changes = [t for t in self.true_path.change_times() if t < self.duration_s]
        return [0.0] + changes + [self.duration_s]

    def arrivals(self) -> List[ProfileArrival]:
        boundaries = self._leg_boundaries()
        arrivals: List[ProfileArrival] = []
        for leg_start, leg_end in zip(boundaries, boundaries[1:]):
            if leg_end <= leg_start:
                continue
            tg = leg_start - self.advance_time_s
            profile = MotionProfile(
                path=self.true_path.restricted(leg_start, leg_end),
                ts=leg_start,
                validity_s=leg_end - leg_start,
                tg=tg,
            )
            arrivals.append(ProfileArrival(time=max(0.0, tg), profile=profile))
        arrivals.sort(key=lambda a: a.time)
        return arrivals
