"""History-based motion prediction (paper Section 4.1.1).

After each motion change the predictor takes two GPS fixes one sampling
period ``δ`` apart — ``(p1, t1)`` and ``(p2, t2)`` — and extrapolates a
constant velocity ``v = (p2 - p1) / δ``.  The resulting profile:

* takes effect at the change time (``ts = c``) but is only *generated* at
  ``tg = c + δ``, i.e. ``Ta = -δ`` (the paper uses δ = 8 s, matching the
  first-fix latency of the GPS hardware it cites);
* inherits the GPS error of both fixes, so larger ``Δ`` means a worse
  heading estimate — the dotted curves of Figure 7.

On top of the per-change profiles, the proxy "periodically monitors the
user's position and issues a new motion profile whenever the user diverges
from the path predicted by the motion profile, by a system threshold"
(Section 4.1.1).  Without this correction loop a noisy velocity estimate
drifts arbitrarily far over a 70-210 s leg; with it, prediction error stays
bounded by roughly the threshold plus one reissue latency.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .gps import GpsModel
from .path import PiecewisePath
from .profile import MotionProfile, ProfileArrival, ProfileProvider


class HistoryPredictorProvider(ProfileProvider):
    """Two-fix velocity extrapolation with GPS error + divergence reissue."""

    def __init__(
        self,
        true_path: PiecewisePath,
        duration_s: float,
        gps: GpsModel,
        rng: np.random.Generator,
        sampling_period_s: float = 8.0,
        monitor_interval_s: float = 2.0,
        divergence_threshold_m: float = 10.0,
    ) -> None:
        if duration_s <= 0:
            raise ValueError("duration must be > 0")
        if sampling_period_s <= 0:
            raise ValueError("sampling period must be > 0")
        if monitor_interval_s <= 0:
            raise ValueError("monitor interval must be > 0")
        if divergence_threshold_m <= 0:
            raise ValueError("divergence threshold must be > 0")
        self.true_path = true_path
        self.duration_s = duration_s
        self.gps = gps
        self.rng = rng
        self.sampling_period_s = sampling_period_s
        self.monitor_interval_s = monitor_interval_s
        self.divergence_threshold_m = divergence_threshold_m

    # ------------------------------------------------------------------
    # Profile construction
    # ------------------------------------------------------------------
    def _two_fix_profile(
        self, fix_time_1: float, fix_time_2: float, ts: float, horizon_s: float
    ) -> MotionProfile:
        """A constant-velocity profile from two GPS fixes.

        The path is anchored at the second (newest) fix and extended
        backward to ``ts`` so the expired part is consistent.
        """
        delta = fix_time_2 - fix_time_1
        fix1 = self.gps.read(self.true_path, fix_time_1, self.rng)
        fix2 = self.gps.read(self.true_path, fix_time_2, self.rng)
        velocity = (fix2.position - fix1.position) / delta
        start_position = fix2.position - velocity * (fix_time_2 - ts)
        path = PiecewisePath.from_velocity(
            start=start_position,
            velocity=velocity,
            start_time=ts,
            duration=max(horizon_s, 1e-3),
        )
        return MotionProfile(path=path, ts=ts, validity_s=max(horizon_s, 1e-3), tg=fix_time_2)

    # ------------------------------------------------------------------
    # The proxy's prediction timeline
    # ------------------------------------------------------------------
    def arrivals(self) -> List[ProfileArrival]:
        delta = self.sampling_period_s
        boundaries = [0.0] + [
            t for t in self.true_path.change_times() if t < self.duration_s - delta
        ]
        boundaries.append(self.duration_s)
        arrivals: List[ProfileArrival] = []
        for index in range(len(boundaries) - 1):
            leg_start = boundaries[index]
            leg_end = boundaries[index + 1]
            horizon = max(leg_end + delta - leg_start, 2.0 * delta)
            # Per-change profile: fixes at the change and δ later (Ta = -δ).
            profile = self._two_fix_profile(
                fix_time_1=leg_start,
                fix_time_2=leg_start + delta,
                ts=leg_start,
                horizon_s=horizon,
            )
            arrivals.append(ProfileArrival(time=leg_start + delta, profile=profile))
            # Divergence monitoring for the rest of the leg.
            t = leg_start + delta
            while True:
                t += self.monitor_interval_s
                if t >= min(leg_end, self.duration_s):
                    break
                fix = self.gps.read(self.true_path, t, self.rng)
                divergence = fix.position.distance_to(profile.position_at(t))
                if divergence <= self.divergence_threshold_m:
                    continue
                # Reissue from the two newest same-leg fixes (t - δ >= leg
                # start holds because t > leg_start + δ).
                profile = self._two_fix_profile(
                    fix_time_1=t - delta,
                    fix_time_2=t,
                    ts=t,
                    horizon_s=max(leg_end + delta - t, 2.0 * delta),
                )
                arrivals.append(ProfileArrival(time=t, profile=profile))
        return arrivals
