"""User mobility: paths, motion models, GPS, motion profiles, prediction."""

from .gps import GpsModel, GpsReading
from .models import RandomDirectionConfig, patrol_path, random_direction_path
from .path import PiecewisePath, Waypoint
from .planner import FullKnowledgeProvider, PlannerProfileProvider
from .predictor import HistoryPredictorProvider
from .profile import MotionProfile, ProfileArrival, ProfileProvider

__all__ = [
    "PiecewisePath",
    "Waypoint",
    "RandomDirectionConfig",
    "random_direction_path",
    "patrol_path",
    "GpsModel",
    "GpsReading",
    "MotionProfile",
    "ProfileArrival",
    "ProfileProvider",
    "FullKnowledgeProvider",
    "PlannerProfileProvider",
    "HistoryPredictorProvider",
]
