"""Time-parameterized piecewise-linear paths.

Both the user's true trajectory and the predicted trajectories inside motion
profiles are piecewise-linear functions of time.  A path is a sorted list of
``(time, position)`` waypoints; position between waypoints is linear
interpolation, and the path is clamped (the user stands still) outside its
time span.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..geometry.vec import Vec2


@dataclass(frozen=True, slots=True)
class Waypoint:
    """A position pinned to a time."""

    time: float
    position: Vec2


class PiecewisePath:
    """Piecewise-linear trajectory through a sequence of waypoints."""

    def __init__(self, waypoints: Sequence[Waypoint]) -> None:
        if not waypoints:
            raise ValueError("a path needs at least one waypoint")
        times = [w.time for w in waypoints]
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise ValueError("waypoint times must be strictly increasing")
        self.waypoints: List[Waypoint] = list(waypoints)
        self._times = times
        # Memo of the segment the last query fell in: queries arrive in
        # near-monotonic simulated-time order, so the same segment answers
        # long runs of calls without a bisect.  The (time, position) memo
        # answers repeated queries at one instant (carrier sense followed by
        # a transmission in the same event) with no arithmetic at all.
        self._last_idx = 0
        self._memo_t = float("nan")
        self._memo_pos = self.waypoints[0].position
        self._max_speed: float | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def stationary(position: Vec2, at_time: float = 0.0) -> "PiecewisePath":
        """A degenerate path: standing still at ``position``."""
        return PiecewisePath([Waypoint(at_time, position)])

    @staticmethod
    def from_velocity(
        start: Vec2, velocity: Vec2, start_time: float, duration: float
    ) -> "PiecewisePath":
        """Straight-line motion at constant ``velocity`` for ``duration``.

        This is the shape every history-based motion profile has (paper
        Section 4.1.1: assume the user keeps moving at the estimated v).
        """
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        return PiecewisePath(
            [
                Waypoint(start_time, start),
                Waypoint(start_time + duration, start + velocity * duration),
            ]
        )

    @staticmethod
    def from_segments(
        start: Vec2,
        start_time: float,
        segments: Sequence[Tuple[Vec2, float]],
    ) -> "PiecewisePath":
        """Chain ``(velocity, duration)`` segments from a starting point."""
        waypoints = [Waypoint(start_time, start)]
        t, p = start_time, start
        for velocity, duration in segments:
            if duration <= 0:
                raise ValueError("segment durations must be > 0")
            t += duration
            p = p + velocity * duration
            waypoints.append(Waypoint(t, p))
        return PiecewisePath(waypoints)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def start_time(self) -> float:
        return self.waypoints[0].time

    @property
    def end_time(self) -> float:
        return self.waypoints[-1].time

    def position_at(self, t: float) -> Vec2:
        """Position at time ``t``; clamped before the start / after the end."""
        if t == self._memo_t:
            return self._memo_pos
        wps = self.waypoints
        if t <= wps[0].time:
            return wps[0].position
        if t >= wps[-1].time:
            return wps[-1].position
        times = self._times
        idx = self._last_idx
        if not times[idx] <= t < times[idx + 1]:
            idx = bisect.bisect_right(times, t) - 1
            self._last_idx = idx
        a, b = wps[idx], wps[idx + 1]
        frac = (t - a.time) / (b.time - a.time)
        pa = a.position
        pb = b.position
        pax = pa.x
        pay = pa.y
        pos = Vec2(pax + (pb.x - pax) * frac, pay + (pb.y - pay) * frac)
        self._memo_t = t
        self._memo_pos = pos
        return pos

    def velocity_at(self, t: float) -> Vec2:
        """Velocity at time ``t`` (zero outside the span; left-continuous
        at waypoints)."""
        wps = self.waypoints
        if t < wps[0].time or t >= wps[-1].time or len(wps) == 1:
            return Vec2.zero()
        idx = bisect.bisect_right(self._times, t) - 1
        a, b = wps[idx], wps[idx + 1]
        return (b.position - a.position) / (b.time - a.time)

    def restricted(self, t0: float, t1: float) -> "PiecewisePath":
        """The sub-path covering ``[t0, t1]`` (endpoints interpolated).

        Used by the motion planner to hand MobiQuery exactly the validity
        window of a profile.
        """
        if t1 <= t0:
            raise ValueError(f"empty restriction [{t0}, {t1}]")
        points = [Waypoint(t0, self.position_at(t0))]
        for waypoint in self.waypoints:
            if t0 < waypoint.time < t1:
                points.append(waypoint)
        points.append(Waypoint(t1, self.position_at(t1)))
        return PiecewisePath(points)

    def change_times(self) -> List[float]:
        """Times at which the velocity changes (interior waypoints)."""
        return [w.time for w in self.waypoints[1:-1]]

    def max_speed(self) -> float:
        """The fastest segment speed — a global Lipschitz bound on motion.

        ``|position_at(t2) - position_at(t1)| <= max_speed() * (t2 - t1)``
        for all t1 <= t2 (the path is clamped outside its span, where the
        speed is zero).  The channel uses this to skip re-evaluating a
        proxy that provably cannot have re-entered radio range.
        """
        if self._max_speed is None:
            best = 0.0
            for a, b in zip(self.waypoints, self.waypoints[1:]):
                speed = a.position.distance_to(b.position) / (b.time - a.time)
                if speed > best:
                    best = speed
            self._max_speed = best
        return self._max_speed

    def total_distance(self) -> float:
        """Arc length of the whole path."""
        return sum(
            a.position.distance_to(b.position)
            for a, b in zip(self.waypoints, self.waypoints[1:])
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PiecewisePath {len(self.waypoints)} wps "
            f"[{self.start_time:.1f}, {self.end_time:.1f}]s>"
        )
