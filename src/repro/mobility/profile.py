"""Motion profiles — the paper's Section 4.1.2 model.

A motion profile ``P`` is a predicted trajectory with three timing
parameters ``(ts, Tv, tg)``: it takes effect at ``ts``, is valid over
``[ts, ts + Tv]``, and was generated at ``tg``.  The *advance time*
``Ta = ts - tg`` is the paper's central robustness knob:

* a motion **planner** (robot) produces profiles before the motion happens,
  so ``Ta > 0``;
* a history-based **predictor** needs one sampling period of observations
  after the motion changes, so ``Ta < 0`` — the profile describes motion
  that already started, and its first ``|Ta|`` seconds are stale on
  arrival.

Profiles carry a monotonically increasing ``generation`` so in-network
state (prefetch chains, trees) can tell stale profiles from the current
one when cancel messages race new prefetches.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List

from ..geometry.vec import Vec2
from .path import PiecewisePath

_generations = itertools.count(1)


@dataclass(frozen=True)
class MotionProfile:
    """A predicted user trajectory with the paper's timing parameters."""

    path: PiecewisePath
    ts: float
    validity_s: float
    tg: float
    generation: int = field(default_factory=lambda: next(_generations))

    def __post_init__(self) -> None:
        if self.validity_s <= 0:
            raise ValueError(f"validity must be > 0, got {self.validity_s}")

    @property
    def advance_time(self) -> float:
        """``Ta = ts - tg``; positive for planners, negative for predictors."""
        return self.ts - self.tg

    @property
    def expires_at(self) -> float:
        """End of the validity interval (``ts + Tv``)."""
        return self.ts + self.validity_s

    def position_at(self, t: float) -> Vec2:
        """Predicted user position at time ``t`` (path semantics: clamped)."""
        return self.path.position_at(t)

    def covers(self, t: float) -> bool:
        """Whether ``t`` falls inside the validity interval."""
        return self.ts <= t <= self.expires_at

    def regenerated(self) -> "MotionProfile":
        """A copy carrying a fresh (strictly newer) generation.

        The gateway stamps every adopted profile this way, so generation
        order always equals adoption order — and a recovery re-injection of
        the *same* trajectory still supersedes in-network state left behind
        by a dead collector.
        """
        from dataclasses import replace

        return replace(self, generation=next(_generations))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MotionProfile gen={self.generation} ts={self.ts:.1f} "
            f"Tv={self.validity_s:.1f} Ta={self.advance_time:+.1f}>"
        )


@dataclass(frozen=True)
class ProfileArrival:
    """A profile paired with the time the proxy receives it."""

    time: float
    profile: MotionProfile


class ProfileProvider:
    """Interface: a schedule of motion-profile deliveries to the proxy."""

    def arrivals(self) -> List[ProfileArrival]:
        """All profile deliveries for the run, in arrival order."""
        raise NotImplementedError
