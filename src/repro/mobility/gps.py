"""GPS location sampling with bounded error.

Section 6.3 of the paper models each GPS reading with "a random location
error within 0 ~ Δ meters", with Δ = 5 m (differential correction) or
Δ = 10 m (without).  We sample an error vector with uniform magnitude in
``[0, max_error]`` and uniform direction, applied to the true position from
the mobility path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..geometry.vec import Vec2
from .path import PiecewisePath


@dataclass(frozen=True)
class GpsReading:
    """One timestamped (noisy) position fix."""

    time: float
    position: Vec2


class GpsModel:
    """Samples noisy position fixes off a true trajectory."""

    def __init__(self, max_error_m: float = 0.0) -> None:
        if max_error_m < 0:
            raise ValueError(f"max error must be >= 0, got {max_error_m}")
        self.max_error_m = max_error_m

    def read(
        self, true_path: PiecewisePath, time: float, rng: np.random.Generator
    ) -> GpsReading:
        """A fix at ``time``: true position plus a bounded random offset."""
        position = true_path.position_at(time)
        if self.max_error_m > 0:
            magnitude = float(rng.uniform(0.0, self.max_error_m))
            angle = float(rng.uniform(0.0, 2.0 * math.pi))
            position = position + Vec2.from_polar(magnitude, angle)
        return GpsReading(time, position)
