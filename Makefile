# MobiQuery reproduction — common developer entry points.
#
#   make test            tier-1 unit/integration tests (fast, ~20 s)
#   make bench-smoke     the two CI benchmark smokes (fig4 + multi-user scaling)
#   make bench           every benchmark (regenerates all paper figures, slow)
#   make bench-perf      time the hot paths and write BENCH_perf.json
#   make bench-cluster   time cluster_scale_64users (shards=1 vs sharded)
#                        and gate the single-shard identity fingerprint
#   make perf-gate       re-measure and fail on >20% events/sec regression
#   make profile         cProfile one bench scenario (SCENARIO=..., ARGS=...)
#   make examples-smoke  run every examples/ script at quick scale
#   make sweep-smoke     quick adversarial robustness sweep (invariant gate)
#   make fuzz-smoke      seeded randomized scenarios through the invariants
#   make serve-smoke     daemon + slam + SIGTERM drain + bit-identical replay
#   make chaos-smoke     wire-fault daemon + retrying slam + SIGKILL +
#                        bit-identical partial WAL replay
#   make approx-smoke    uav-survey at coarse + exact accuracy, then the
#                        accuracy/energy frontier gate
#   make check           what CI runs on every push

PY ?= python

#: quick-scale duration (seconds) the examples smoke runs at
EXAMPLE_SMOKE_DURATION ?= 30

#: default scenario for `make profile`
SCENARIO ?= scale_16users

#: port the serve smoke binds (ephemeral-ish, off the default 8600)
SERVE_SMOKE_PORT ?= 8641

#: port the chaos smoke binds (distinct so both smokes can run in parallel)
CHAOS_SMOKE_PORT ?= 8652

.PHONY: test bench bench-smoke bench-perf bench-cluster perf-gate profile examples-smoke sweep-smoke fuzz-smoke serve-smoke chaos-smoke approx-smoke check

test:
	PYTHONPATH=src $(PY) -m pytest -q tests/

examples-smoke:
	@for script in examples/*.py; do \
		echo "== $$script (REPRO_EXAMPLE_DURATION=$(EXAMPLE_SMOKE_DURATION))"; \
		PYTHONPATH=src REPRO_EXAMPLE_DURATION=$(EXAMPLE_SMOKE_DURATION) \
			$(PY) $$script > /dev/null || exit 1; \
	done; echo "all examples OK"

bench-smoke:
	PYTHONPATH=src $(PY) -m pytest -q benchmarks/test_fig4_success_ratio.py benchmarks/test_multiuser_scaling.py

bench:
	PYTHONPATH=src $(PY) -m pytest -q benchmarks/

# Gate against a same-machine reference with:
#   make bench-perf PERF_ARGS="--baseline BENCH_perf.json"
bench-perf:
	PYTHONPATH=src $(PY) -m repro bench --scale quick --both-paths \
		--output BENCH_perf.json $(PERF_ARGS)

# The cluster scale-out bench: times cluster_scale_64users on one world vs
# 4 shards (+4 workers where the cores exist), merges a "cluster" section
# into BENCH_perf.json, and fails if ClusterService(shards=1) drifts from
# the pinned MobiQueryService result fingerprint.
bench-cluster:
	PYTHONPATH=src $(PY) -m repro bench --cluster --scale quick --both-paths \
		--output BENCH_perf.json

# Re-measure against the committed BENCH_perf.json without overwriting it
# (what CI's perf-smoke job runs): >20% events/sec regression fails.
perf-gate:
	cp BENCH_perf.json /tmp/bench_baseline.json
	PYTHONPATH=src $(PY) -m repro bench --scale quick \
		--output /tmp/bench_fresh.json --baseline /tmp/bench_baseline.json

# A quick adversarial sweep over the blackout drill: a 2x2x2 grid
# (users x shards x fault intensity) with every metamorphic invariant
# enforced — fault-monotonicity, shards1-identity (faults included),
# churn-no-leak.  Exits 3 naming the invariant on any violation; the
# report lands in SWEEP_robustness-smoke.json.
sweep-smoke:
	PYTHONPATH=src $(PY) -m repro sweep blackout-recovery-16users \
		--duration 36 --users 2,4 --shards 1,2 --intensities 0,1 \
		--arrivals staggered --name robustness-smoke

# Seeded randomized scenarios (strictly bounded draws) through the same
# metamorphic invariants the sweep enforces.  Same seed, same cases —
# any violation replays with `repro fuzz --seed 0 --runs 2`.  The report
# lands in FUZZ_fuzz-smoke.json.
fuzz-smoke:
	PYTHONPATH=src $(PY) -m repro fuzz paper-default --runs 2 --seed 0 \
		--name fuzz-smoke

# The serving-layer smoke: boot the daemon, slam it with the rush-hour
# burst from 4 concurrent clients, drain it with SIGTERM, then prove the
# recorded submission log replays bit-identically.  Artifacts land in
# SERVE_serve-smoke.json + SLAM_serve-smoke.json.
serve-smoke:
	@rm -f SERVE_serve-smoke.json SLAM_serve-smoke.json; \
	PYTHONPATH=src $(PY) -m repro serve rush-hour-burst --duration 30 \
		--port $(SERVE_SMOKE_PORT) --time-scale 6 --drain-timeout 120 \
		--name serve-smoke & \
	SERVE_PID=$$!; \
	ready=0; \
	for i in $$(seq 1 100); do \
		if $(PY) -c "import urllib.request; urllib.request.urlopen('http://127.0.0.1:$(SERVE_SMOKE_PORT)/healthz', timeout=1)" 2>/dev/null; then \
			ready=1; break; \
		fi; \
		sleep 0.2; \
	done; \
	if [ $$ready -ne 1 ]; then \
		echo "serve-smoke: daemon never answered /healthz"; \
		kill $$SERVE_PID 2>/dev/null; exit 1; \
	fi; \
	PYTHONPATH=src $(PY) -m repro slam rush-hour-burst --sim-duration 30 \
		--url http://127.0.0.1:$(SERVE_SMOKE_PORT) --rate 16 --clients 4 \
		--duration 90 --name serve-smoke \
		|| { kill $$SERVE_PID 2>/dev/null; exit 1; }; \
	kill -TERM $$SERVE_PID; \
	wait $$SERVE_PID || exit 1; \
	PYTHONPATH=src $(PY) -m repro replay SERVE_serve-smoke.json

# The chaos drill as a shell pipeline: a daemon whose wire actively
# fails (resets, injected 5xx, truncated bodies, delays), a slam client
# that absorbs it all with bounded retries + idempotency keys, a SIGKILL
# mid-flight (no drain, no report), and the proof that the crash-safe
# WAL's flushed prefix still replays bit-identically.  Artifacts:
# SLAM_chaos-smoke.json + SERVE_chaos-smoke.wal.
chaos-smoke:
	@rm -f SERVE_chaos-smoke.wal SLAM_chaos-smoke.json /tmp/chaos_scenario.json; \
	PYTHONPATH=src $(PY) -c "import json; from repro.api.scenarios import get_scenario; spec = get_scenario('rush-hour-burst').with_overrides(duration_s=24.0, faults={'wire': {'reset_prob': 0.06, 'delay_prob': 0.1, 'delay_s': 0.05, 'error_prob': 0.06, 'truncate_prob': 0.06}}); json.dump(spec.to_dict(), open('/tmp/chaos_scenario.json', 'w'))"; \
	PYTHONPATH=src $(PY) -m repro serve --file /tmp/chaos_scenario.json \
		--port $(CHAOS_SMOKE_PORT) --time-scale 4 --wal-flush 2 \
		--name chaos-smoke & \
	SERVE_PID=$$!; \
	ready=0; \
	for i in $$(seq 1 150); do \
		if $(PY) -c "import urllib.request; urllib.request.urlopen('http://127.0.0.1:$(CHAOS_SMOKE_PORT)/healthz', timeout=1)" 2>/dev/null; then \
			ready=1; break; \
		fi; \
		sleep 0.2; \
	done; \
	if [ $$ready -ne 1 ]; then \
		echo "chaos-smoke: daemon never answered /healthz"; \
		kill $$SERVE_PID 2>/dev/null; exit 1; \
	fi; \
	PYTHONPATH=src $(PY) -m repro slam --file /tmp/chaos_scenario.json \
		--url http://127.0.0.1:$(CHAOS_SMOKE_PORT) --rate 16 --clients 4 \
		--duration 90 --retries 8 --name chaos-smoke \
		|| { kill -KILL $$SERVE_PID 2>/dev/null; exit 1; }; \
	kill -KILL $$SERVE_PID; \
	wait $$SERVE_PID 2>/dev/null; \
	PYTHONPATH=src $(PY) -m repro replay --partial SERVE_chaos-smoke.wal

# The approximate-query smoke: run the pinned frontier scenario at both
# accuracy levels (coarse answers from in-network summaries, exact runs
# the full collection protocol), then gate the frontier — coarse must
# cut frames >= 2x while every answer stays within its declared
# error_bound of the exact twin's.
approx-smoke:
	PYTHONPATH=src $(PY) -m repro scenario uav-survey --accuracy coarse
	PYTHONPATH=src $(PY) -m repro scenario uav-survey --accuracy exact
	PYTHONPATH=src $(PY) -m pytest -q benchmarks/test_approx_frontier.py

# One-command cProfile of a canonical scenario (the ROADMAP recipe):
#   make profile SCENARIO=fig4_jit ARGS="--sort cumtime --top 40"
profile:
	PYTHONPATH=src $(PY) -m repro profile $(SCENARIO) $(ARGS)

check: test bench-smoke examples-smoke
