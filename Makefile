# MobiQuery reproduction — common developer entry points.
#
#   make test            tier-1 unit/integration tests (fast, ~20 s)
#   make bench-smoke     the two CI benchmark smokes (fig4 + multi-user scaling)
#   make bench           every benchmark (regenerates all paper figures, slow)
#   make bench-perf      time the hot paths and write BENCH_perf.json
#   make bench-cluster   time cluster_scale_64users (shards=1 vs sharded)
#                        and gate the single-shard identity fingerprint
#   make perf-gate       re-measure and fail on >20% events/sec regression
#   make profile         cProfile one bench scenario (SCENARIO=..., ARGS=...)
#   make examples-smoke  run every examples/ script at quick scale
#   make sweep-smoke     quick adversarial robustness sweep (invariant gate)
#   make serve-smoke     daemon + slam + SIGTERM drain + bit-identical replay
#   make check           what CI runs on every push

PY ?= python

#: quick-scale duration (seconds) the examples smoke runs at
EXAMPLE_SMOKE_DURATION ?= 30

#: default scenario for `make profile`
SCENARIO ?= scale_16users

#: port the serve smoke binds (ephemeral-ish, off the default 8600)
SERVE_SMOKE_PORT ?= 8641

.PHONY: test bench bench-smoke bench-perf bench-cluster perf-gate profile examples-smoke sweep-smoke serve-smoke check

test:
	PYTHONPATH=src $(PY) -m pytest -q tests/

examples-smoke:
	@for script in examples/*.py; do \
		echo "== $$script (REPRO_EXAMPLE_DURATION=$(EXAMPLE_SMOKE_DURATION))"; \
		PYTHONPATH=src REPRO_EXAMPLE_DURATION=$(EXAMPLE_SMOKE_DURATION) \
			$(PY) $$script > /dev/null || exit 1; \
	done; echo "all examples OK"

bench-smoke:
	PYTHONPATH=src $(PY) -m pytest -q benchmarks/test_fig4_success_ratio.py benchmarks/test_multiuser_scaling.py

bench:
	PYTHONPATH=src $(PY) -m pytest -q benchmarks/

# Gate against a same-machine reference with:
#   make bench-perf PERF_ARGS="--baseline BENCH_perf.json"
bench-perf:
	PYTHONPATH=src $(PY) -m repro bench --scale quick --both-paths \
		--output BENCH_perf.json $(PERF_ARGS)

# The cluster scale-out bench: times cluster_scale_64users on one world vs
# 4 shards (+4 workers where the cores exist), merges a "cluster" section
# into BENCH_perf.json, and fails if ClusterService(shards=1) drifts from
# the pinned MobiQueryService result fingerprint.
bench-cluster:
	PYTHONPATH=src $(PY) -m repro bench --cluster --scale quick --both-paths \
		--output BENCH_perf.json

# Re-measure against the committed BENCH_perf.json without overwriting it
# (what CI's perf-smoke job runs): >20% events/sec regression fails.
perf-gate:
	cp BENCH_perf.json /tmp/bench_baseline.json
	PYTHONPATH=src $(PY) -m repro bench --scale quick \
		--output /tmp/bench_fresh.json --baseline /tmp/bench_baseline.json

# A quick adversarial sweep over the blackout drill: a 2x2x2 grid
# (users x shards x fault intensity) with every metamorphic invariant
# enforced — fault-monotonicity, shards1-identity (faults included),
# churn-no-leak.  Exits 3 naming the invariant on any violation; the
# report lands in SWEEP_robustness-smoke.json.
sweep-smoke:
	PYTHONPATH=src $(PY) -m repro sweep blackout-recovery-16users \
		--duration 36 --users 2,4 --shards 1,2 --intensities 0,1 \
		--arrivals staggered --name robustness-smoke

# The serving-layer smoke: boot the daemon, slam it with the rush-hour
# burst from 4 concurrent clients, drain it with SIGTERM, then prove the
# recorded submission log replays bit-identically.  Artifacts land in
# SERVE_serve-smoke.json + SLAM_serve-smoke.json.
serve-smoke:
	@rm -f SERVE_serve-smoke.json SLAM_serve-smoke.json; \
	PYTHONPATH=src $(PY) -m repro serve rush-hour-burst --duration 30 \
		--port $(SERVE_SMOKE_PORT) --time-scale 6 --drain-timeout 120 \
		--name serve-smoke & \
	SERVE_PID=$$!; \
	ready=0; \
	for i in $$(seq 1 100); do \
		if $(PY) -c "import urllib.request; urllib.request.urlopen('http://127.0.0.1:$(SERVE_SMOKE_PORT)/healthz', timeout=1)" 2>/dev/null; then \
			ready=1; break; \
		fi; \
		sleep 0.2; \
	done; \
	if [ $$ready -ne 1 ]; then \
		echo "serve-smoke: daemon never answered /healthz"; \
		kill $$SERVE_PID 2>/dev/null; exit 1; \
	fi; \
	PYTHONPATH=src $(PY) -m repro slam rush-hour-burst --sim-duration 30 \
		--url http://127.0.0.1:$(SERVE_SMOKE_PORT) --rate 16 --clients 4 \
		--duration 90 --name serve-smoke \
		|| { kill $$SERVE_PID 2>/dev/null; exit 1; }; \
	kill -TERM $$SERVE_PID; \
	wait $$SERVE_PID || exit 1; \
	PYTHONPATH=src $(PY) -m repro replay SERVE_serve-smoke.json

# One-command cProfile of a canonical scenario (the ROADMAP recipe):
#   make profile SCENARIO=fig4_jit ARGS="--sort cumtime --top 40"
profile:
	PYTHONPATH=src $(PY) -m repro profile $(SCENARIO) $(ARGS)

check: test bench-smoke examples-smoke
