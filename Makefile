# MobiQuery reproduction — common developer entry points.
#
#   make test            tier-1 unit/integration tests (fast, ~20 s)
#   make bench-smoke     the two CI benchmark smokes (fig4 + multi-user scaling)
#   make bench           every benchmark (regenerates all paper figures, slow)
#   make bench-perf      time the hot paths and write BENCH_perf.json
#   make examples-smoke  run every examples/ script at quick scale
#   make check           what CI runs on every push

PY ?= python

#: quick-scale duration (seconds) the examples smoke runs at
EXAMPLE_SMOKE_DURATION ?= 30

.PHONY: test bench bench-smoke bench-perf examples-smoke check

test:
	PYTHONPATH=src $(PY) -m pytest -q tests/

examples-smoke:
	@for script in examples/*.py; do \
		echo "== $$script (REPRO_EXAMPLE_DURATION=$(EXAMPLE_SMOKE_DURATION))"; \
		PYTHONPATH=src REPRO_EXAMPLE_DURATION=$(EXAMPLE_SMOKE_DURATION) \
			$(PY) $$script > /dev/null || exit 1; \
	done; echo "all examples OK"

bench-smoke:
	PYTHONPATH=src $(PY) -m pytest -q benchmarks/test_fig4_success_ratio.py benchmarks/test_multiuser_scaling.py

bench:
	PYTHONPATH=src $(PY) -m pytest -q benchmarks/

# Gate against a same-machine reference with:
#   make bench-perf PERF_ARGS="--baseline BENCH_perf.json"
bench-perf:
	PYTHONPATH=src $(PY) -m repro bench --scale quick --output BENCH_perf.json $(PERF_ARGS)

check: test bench-smoke examples-smoke
