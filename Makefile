# MobiQuery reproduction — common developer entry points.
#
#   make test         tier-1 unit/integration tests (fast, ~20 s)
#   make bench-smoke  the two CI benchmark smokes (fig4 + multi-user scaling)
#   make bench        every benchmark (regenerates all paper figures, slow)
#   make check        what CI runs on every push

PY ?= python

.PHONY: test bench bench-smoke check

test:
	PYTHONPATH=src $(PY) -m pytest -q tests/

bench-smoke:
	PYTHONPATH=src $(PY) -m pytest -q benchmarks/test_fig4_success_ratio.py benchmarks/test_multiuser_scaling.py

bench:
	PYTHONPATH=src $(PY) -m pytest -q benchmarks/

check: test bench-smoke
